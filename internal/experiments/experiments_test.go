package experiments

import (
	"math"
	"strings"
	"testing"

	"loki/internal/core"
)

// fastDeanonConfig shrinks the §2 setup so the full pipeline stays quick
// in unit tests while keeping its shape.
func fastDeanonConfig() DeanonConfig {
	cfg := DefaultDeanonConfig()
	cfg.Population.RegistrySize = 40_000
	cfg.Platform.WorkerPoolSize = 400
	cfg.Quotas = [5]int{80, 80, 80, 30, 50}
	return cfg
}

func TestDeanonShape(t *testing.T) {
	res, err := RunDeanonymization(fastDeanonConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := res.Attack
	if a.UniqueWorkers == 0 {
		t.Fatal("no workers")
	}
	if a.Linkable == 0 {
		t.Fatal("no linkable workers — the attack premise failed")
	}
	if a.Linkable > a.UniqueWorkers {
		t.Error("linkable exceeds unique workers")
	}
	if a.Reidentified > a.Linkable {
		t.Error("re-identified exceeds linkable")
	}
	if a.Reidentified+a.Ambiguous+a.Unmatched != a.Linkable {
		t.Errorf("pipeline counts do not add up: %d + %d + %d != %d",
			a.Reidentified, a.Ambiguous, a.Unmatched, a.Linkable)
	}
	if a.HealthExposed > a.Reidentified {
		t.Error("health exposed exceeds re-identified")
	}
	if a.HealthExposed != len(a.Victims) {
		t.Error("victims list inconsistent")
	}
	// Truthful workers give exact answers, so scored re-identifications
	// are all correct.
	if a.ReidentifiedCorrect != a.Reidentified {
		t.Errorf("precision %d/%d — wrong identities recovered", a.ReidentifiedCorrect, a.Reidentified)
	}
	if res.RegistryUniqueFraction < 0.4 || res.RegistryUniqueFraction > 0.95 {
		t.Errorf("registry uniqueness %.3f outside plausible band", res.RegistryUniqueFraction)
	}
	if res.CostCents <= 0 {
		t.Error("attack cost zero")
	}
	if res.Days <= 0 {
		t.Error("no simulated days elapsed")
	}
}

func TestDeanonConfigErrors(t *testing.T) {
	bad := fastDeanonConfig()
	bad.Population.NumZIPs = 0
	if _, err := RunDeanonymization(bad); err == nil {
		t.Error("invalid population config accepted")
	}
	bad = fastDeanonConfig()
	bad.Platform.WorkerPoolSize = -1
	if _, err := RunDeanonymization(bad); err == nil {
		t.Error("invalid platform config accepted")
	}
	bad = fastDeanonConfig()
	bad.Appeals[3] = -0.5
	if _, err := RunDeanonymization(bad); err == nil {
		t.Error("negative appeal accepted")
	}
	bad = fastDeanonConfig()
	bad.Quotas[0] = 0
	if _, err := RunDeanonymization(bad); err == nil {
		t.Error("zero quota accepted")
	}
}

func TestDeanonDeterministic(t *testing.T) {
	cfg := fastDeanonConfig()
	a, err := RunDeanonymization(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDeanonymization(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Attack.UniqueWorkers != b.Attack.UniqueWorkers ||
		a.Attack.Linkable != b.Attack.Linkable ||
		a.Attack.Reidentified != b.Attack.Reidentified ||
		a.Attack.HealthExposed != b.Attack.HealthExposed ||
		a.CostCents != b.CostCents {
		t.Fatal("same-seed runs diverged")
	}
}

func TestDeanonPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale reproduction skipped in -short")
	}
	res, err := RunDeanonymization(DefaultDeanonConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := res.Attack
	// Paper: 400 unique, 72 linkable, 18 health-exposed, < $30, days.
	if a.UniqueWorkers < 300 || a.UniqueWorkers > 520 {
		t.Errorf("unique workers %d far from the paper's 400", a.UniqueWorkers)
	}
	if a.Linkable < 50 || a.Linkable > 100 {
		t.Errorf("linkable %d far from the paper's 72", a.Linkable)
	}
	if a.HealthExposed < 8 || a.HealthExposed > 30 {
		t.Errorf("health exposed %d far from the paper's 18", a.HealthExposed)
	}
	if res.CostCents > PaperCostDollars*100+500 {
		t.Errorf("cost $%.2f far above the paper's <$%d", float64(res.CostCents)/100, PaperCostDollars)
	}
	if res.Days > 14 {
		t.Errorf("%d days is not 'a few days'", res.Days)
	}
	// E2 shape: most workers unaware and unwilling.
	frac := float64(res.UnawareRefuse) / float64(res.AwarenessRespondents)
	if frac < 0.55 || frac > 0.9 {
		t.Errorf("unaware-refuse fraction %.2f far from the paper's 0.73", frac)
	}
}

func TestDeanonRender(t *testing.T) {
	res, err := RunDeanonymization(fastDeanonConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"E1", "E2", "unique workers", "72", "linkable", "awareness"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q", want)
		}
	}
}

func TestIDPolicyAblation(t *testing.T) {
	stable, pseud, err := RunIDPolicyAblation(fastDeanonConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stable.Attack.Linkable == 0 {
		t.Fatal("stable IDs produced no linkable workers")
	}
	if pseud.Attack.Linkable != 0 || pseud.Attack.Reidentified != 0 {
		t.Errorf("pseudonyms left %d linkable, %d re-identified",
			pseud.Attack.Linkable, pseud.Attack.Reidentified)
	}
	out := RenderIDPolicyAblation(stable, pseud)
	if !strings.Contains(out, "A2") || !strings.Contains(out, "pseudonyms") {
		t.Error("A2 render incomplete")
	}
}

func TestFilterAblation(t *testing.T) {
	filtered, unfiltered, err := RunFilterAblation(fastDeanonConfig())
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Attack.FilteredInconsistent == 0 {
		t.Error("filter dropped nobody despite random responders")
	}
	if unfiltered.Attack.FilteredInconsistent != 0 {
		t.Error("disabled filter still dropped workers")
	}
	if unfiltered.Attack.Linkable < filtered.Attack.Linkable {
		t.Error("disabling the filter reduced linkable workers")
	}
	// Without the filter, garbage quasi-identifiers leak into the
	// pipeline as unmatched or wrong lookups.
	if unfiltered.Attack.Unmatched < filtered.Attack.Unmatched {
		t.Error("unfiltered run has fewer unmatched quasi-identifiers")
	}
	out := RenderFilterAblation(filtered, unfiltered)
	if !strings.Contains(out, "A3") {
		t.Error("A3 render incomplete")
	}
}

func TestLecturerTrialValidation(t *testing.T) {
	bad := DefaultTrialConfig()
	bad.Students = 0
	if _, err := RunLecturerTrial(bad); err == nil {
		t.Error("0 students accepted")
	}
	bad = DefaultTrialConfig()
	bad.Lecturers = 0
	if _, err := RunLecturerTrial(bad); err == nil {
		t.Error("0 lecturers accepted")
	}
	bad = DefaultTrialConfig()
	bad.BinCounts = [core.NumLevels]int{1, 1, 1, 1}
	if _, err := RunLecturerTrial(bad); err == nil {
		t.Error("bin counts not summing to students accepted")
	}
	bad = DefaultTrialConfig()
	bad.BinCounts[0] = -1
	bad.BinCounts[1] += 1
	if _, err := RunLecturerTrial(bad); err == nil {
		t.Error("negative bin count accepted")
	}
	bad = DefaultTrialConfig()
	bad.ParticipationLo = 0
	if _, err := RunLecturerTrial(bad); err == nil {
		t.Error("zero participation accepted")
	}
	bad = DefaultTrialConfig()
	bad.Schedule.Sigma[core.None] = 5
	if _, err := RunLecturerTrial(bad); err == nil {
		t.Error("invalid schedule accepted")
	}
}

func TestLecturerTrialShape(t *testing.T) {
	res, err := RunLecturerTrial(DefaultTrialConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lecturers) != PaperTrialLecturers {
		t.Fatalf("lecturers = %d", len(res.Lecturers))
	}
	if res.BinTotals != PaperBinCounts {
		t.Errorf("bin totals %v != paper %v", res.BinTotals, PaperBinCounts)
	}
	// Fig. 2's key observation: high-privacy bins deviate more than the
	// no-privacy bin.
	if res.MeanAbsDeviation[core.High] <= res.MeanAbsDeviation[core.None] {
		t.Errorf("high bin deviation %.3f not above none bin %.3f",
			res.MeanAbsDeviation[core.High], res.MeanAbsDeviation[core.None])
	}
	// Yet the overall estimates stay usable.
	if res.NaiveRMSE > 0.30 {
		t.Errorf("naive RMSE %.3f too large to make inferences", res.NaiveRMSE)
	}
	// Bin deviations are statistically indistinguishable from noise: at
	// α=0.05 only about 5% of bins should flag (allow up to 20% for a
	// single seed).
	if res.TestedBins < 40 {
		t.Errorf("tested only %d bins", res.TestedBins)
	}
	if frac := float64(res.SignificantBins) / float64(res.TestedBins); frac > 0.20 {
		t.Errorf("%.0f%% of bins significantly deviate — obfuscation looks biased", 100*frac)
	}
	for _, lr := range res.Lecturers {
		if lr.Raters == 0 {
			t.Errorf("lecturer %s has no raters", lr.Name)
		}
		n := 0
		for _, b := range lr.Bins {
			n += b.N
		}
		if n != lr.Raters {
			t.Errorf("lecturer %s bins sum %d != raters %d", lr.Name, n, lr.Raters)
		}
		if lr.TruthMean < 1 || lr.TruthMean > 5 {
			t.Errorf("lecturer %s truth %.2f off scale", lr.Name, lr.TruthMean)
		}
	}
	out := res.Render()
	for _, want := range []string{"E3", "E4", "none", "high", "histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("trial render lacks %q", want)
		}
	}
}

func TestTrialDeterministic(t *testing.T) {
	cfg := DefaultTrialConfig()
	a, err := RunLecturerTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLecturerTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NaiveRMSE != b.NaiveRMSE || a.PooledRMSE != b.PooledRMSE {
		t.Fatal("same-seed trials diverged")
	}
}

func TestTrustedComparison(t *testing.T) {
	tc, err := RunTrustedComparison(DefaultTrialConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tc.PaperTrue != PaperAnecdoteTrue || tc.PaperNoisy != PaperAnecdoteNoisy {
		t.Error("paper constants wrong")
	}
	if tc.Quality != 4.61 {
		t.Errorf("anecdote lecturer quality %.2f, want 4.61", tc.Quality)
	}
	// The reproduction's error should be in the same ballpark as the
	// paper's 0.11.
	if tc.AbsError > 0.35 {
		t.Errorf("absolute error %.3f far above the paper's 0.11", tc.AbsError)
	}
	if !strings.Contains(tc.Render(), "4.61") {
		t.Error("E5 render lacks the paper's trusted rating")
	}
}

func TestLevelTakeup(t *testing.T) {
	if _, err := RunLevelTakeup(1, 0, 131); err == nil {
		t.Error("0 cohorts accepted")
	}
	if _, err := RunLevelTakeup(1, 10, 0); err == nil {
		t.Error("0 cohort size accepted")
	}
	res, err := RunLevelTakeup(3, 300, PaperTrialStudents)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for l := 0; l < core.NumLevels; l++ {
		total += res.MeanCounts[l]
		if math.Abs(res.MeanCounts[l]-float64(PaperBinCounts[l])) > 3 {
			t.Errorf("level %v mean count %.1f far from paper %d",
				core.Level(l), res.MeanCounts[l], PaperBinCounts[l])
		}
	}
	if math.Abs(total-float64(PaperTrialStudents)) > 1e-9 {
		t.Errorf("mean counts sum to %.2f", total)
	}
	if res.ModalMediumShare < 0.5 {
		t.Errorf("medium modal in only %.0f%% of cohorts", 100*res.ModalMediumShare)
	}
	if !strings.Contains(res.Render(), "E6") {
		t.Error("E6 render incomplete")
	}
}

func TestEstimatorAblation(t *testing.T) {
	res, err := RunEstimatorAblation(DefaultTrialConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerLecturer) != PaperTrialLecturers {
		t.Fatalf("per-lecturer rows = %d", len(res.PerLecturer))
	}
	// Noise-aware pooling should not be much worse than naive, and is
	// usually better.
	if res.PooledRMSE > res.NaiveRMSE*1.25 {
		t.Errorf("pooled RMSE %.3f much worse than naive %.3f", res.PooledRMSE, res.NaiveRMSE)
	}
	if !strings.Contains(res.Render(), "A4") {
		t.Error("A4 render incomplete")
	}
}

func TestAccuracySweep(t *testing.T) {
	bad := DefaultSweepConfig()
	bad.Trials = 0
	if _, err := RunAccuracySweep(bad); err == nil {
		t.Error("0 trials accepted")
	}
	bad = DefaultSweepConfig()
	bad.Sigmas = nil
	if _, err := RunAccuracySweep(bad); err == nil {
		t.Error("empty sigma axis accepted")
	}
	bad = DefaultSweepConfig()
	bad.Sigmas = []float64{-1}
	if _, err := RunAccuracySweep(bad); err == nil {
		t.Error("negative sigma accepted")
	}
	bad = DefaultSweepConfig()
	bad.Ns = []int{0}
	if _, err := RunAccuracySweep(bad); err == nil {
		t.Error("n=0 accepted")
	}

	cfg := DefaultSweepConfig()
	cfg.Trials = 150
	res, err := RunAccuracySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(cfg.Sigmas)*len(cfg.Ns) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	// Error grows with noise at fixed n...
	lo, _ := res.Cell(0, 51)
	hi, _ := res.Cell(3.0, 51)
	if hi.RMSE <= lo.RMSE {
		t.Errorf("RMSE did not grow with sigma: %.3f vs %.3f", lo.RMSE, hi.RMSE)
	}
	// ...and shrinks with n at fixed noise.
	small, _ := res.Cell(2.0, 5)
	large, _ := res.Cell(2.0, 200)
	if large.RMSE >= small.RMSE {
		t.Errorf("RMSE did not shrink with n: %.3f vs %.3f", small.RMSE, large.RMSE)
	}
	// Clamping biases a high mean downward at meaningful noise.
	cl, _ := res.Cell(2.0, 51)
	if cl.BiasClamped >= 0 {
		t.Errorf("clamped bias %.3f not negative for mean 4.2", cl.BiasClamped)
	}
	if _, ok := res.Cell(99, 99); ok {
		t.Error("phantom cell found")
	}
	if !strings.Contains(res.Render(), "A1") {
		t.Error("A1 render incomplete")
	}
}

func TestLedgerGrowth(t *testing.T) {
	bad := DefaultLedgerGrowthConfig()
	bad.QuestionsPerSurvey = 0
	if _, err := RunLedgerGrowth(bad); err == nil {
		t.Error("0 questions accepted")
	}
	bad = DefaultLedgerGrowthConfig()
	bad.Delta = 0
	if _, err := RunLedgerGrowth(bad); err == nil {
		t.Error("delta 0 accepted")
	}
	bad = DefaultLedgerGrowthConfig()
	bad.Ks = []int{0}
	if _, err := RunLedgerGrowth(bad); err == nil {
		t.Error("k=0 accepted")
	}

	res, err := RunLedgerGrowth(DefaultLedgerGrowthConfig())
	if err != nil {
		t.Fatal(err)
	}
	byLevel := map[core.Level][]LedgerGrowthPoint{}
	for _, p := range res.Points {
		byLevel[p.Level] = append(byLevel[p.Level], p)
	}
	for lvl, pts := range byLevel {
		for i := 1; i < len(pts); i++ {
			if pts[i].ZCDP <= pts[i-1].ZCDP || pts[i].Basic <= pts[i-1].Basic {
				t.Errorf("level %v: ε not growing in k", lvl)
			}
		}
		for _, p := range pts {
			if p.ZCDP > p.Basic {
				t.Errorf("level %v k=%d: zCDP %g above basic %g", lvl, p.K, p.ZCDP, p.Basic)
			}
			if p.Advanced > p.Basic {
				t.Errorf("level %v k=%d: reported advanced %g above basic %g", lvl, p.K, p.Advanced, p.Basic)
			}
		}
		// zCDP grows sublinearly: ε(50 surveys) well below 50×ε(1).
		first, last := pts[0], pts[len(pts)-1]
		if last.ZCDP >= first.ZCDP*float64(last.K)*0.9 {
			t.Errorf("level %v: zCDP growth looks linear", lvl)
		}
	}
	if !strings.Contains(res.Render(), "A5") {
		t.Error("A5 render incomplete")
	}
}

func TestDefense(t *testing.T) {
	cfg := DefaultDefenseConfig()
	cfg.Deanon = fastDeanonConfig()
	res, err := RunDefense(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loki.Attack.Linkable >= res.Raw.Attack.Linkable {
		t.Errorf("obfuscation did not reduce linkability: %d vs %d",
			res.Loki.Attack.Linkable, res.Raw.Attack.Linkable)
	}
	if res.Loki.Attack.HealthExposed >= res.Raw.Attack.HealthExposed {
		t.Errorf("obfuscation did not reduce health exposure: %d vs %d",
			res.Loki.Attack.HealthExposed, res.Raw.Attack.HealthExposed)
	}
	if res.NoneShare <= 0 || res.NoneShare >= 1 {
		t.Errorf("none share = %g", res.NoneShare)
	}
	// The utility half: the debiased smoking distribution stays close to
	// truth at cohort scale.
	if len(res.SmokingTruth) != 4 || len(res.SmokingLoki) != 4 {
		t.Fatalf("smoking distributions missing: %v / %v", res.SmokingTruth, res.SmokingLoki)
	}
	if res.SmokingMaxErr > 0.12 {
		t.Errorf("debiased smoking estimate off by %.1f%%", 100*res.SmokingMaxErr)
	}
	if !strings.Contains(res.Render(), "E7") || !strings.Contains(res.Render(), "utility survives") {
		t.Error("E7 render incomplete")
	}

	bad := cfg
	bad.AttackSlack = -1
	if _, err := RunDefense(bad); err == nil {
		t.Error("negative slack accepted")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("title", "a", "bb")
	tb.AddRow("x")
	tb.AddVals(1, 2.5, "dropped")
	out := tb.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "bb") {
		t.Errorf("table render:\n%s", out)
	}
	if strings.Contains(out, "dropped") {
		t.Error("over-width cell not dropped")
	}
}

func TestSparklineAndBars(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	if got := Sparkline([]float64{math.NaN()}); got != " " {
		t.Errorf("NaN sparkline = %q", got)
	}
	s := Sparkline([]float64{0, 0.5, 1})
	if len([]rune(s)) != 3 {
		t.Errorf("sparkline length = %d", len([]rune(s)))
	}
	flat := Sparkline([]float64{2, 2, 2})
	if len([]rune(flat)) != 3 {
		t.Error("flat sparkline wrong length")
	}
	bars := BarChart([]string{"a", "b"}, []float64{1, 2}, 10)
	if !strings.Contains(bars, "a") || !strings.Contains(bars, "█") {
		t.Errorf("bar chart:\n%s", bars)
	}
	zero := BarChart([]string{"a"}, []float64{0}, 0)
	if !strings.Contains(zero, "a") {
		t.Error("zero bar chart")
	}
}
