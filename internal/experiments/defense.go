package experiments

import (
	"fmt"
	"math"

	"loki/internal/aggregate"
	"loki/internal/core"
	"loki/internal/population"
	"loki/internal/rng"
	"loki/internal/survey"
)

// DefenseConfig parameterizes E7, the extension experiment that closes
// the paper's loop: re-run the §2 attack against a platform whose
// workers answer through Loki's at-source obfuscation.
type DefenseConfig struct {
	// Deanon is the underlying §2 setup (population, platform, quotas).
	Deanon DeanonConfig
	// Schedule and Options configure the app-layer obfuscator.
	Schedule core.Schedule
	Options  core.Options
	// AttackSlack widens the attacker's consistency tolerances so the
	// redundancy filter does not simply discard every noisy response —
	// the attacker adapts, and still loses.
	AttackSlack float64
}

// DefaultDefenseConfig uses the paper-shaped §2 setup with the default
// schedule.
func DefaultDefenseConfig() DefenseConfig {
	return DefenseConfig{
		Deanon:      DefaultDeanonConfig(),
		Schedule:    core.DefaultSchedule(),
		Options:     core.DefaultOptions(),
		AttackSlack: 3,
	}
}

// DefenseResult compares the attack against raw uploads (AMT) with the
// same attack against Loki uploads.
type DefenseResult struct {
	Raw  *DeanonResult
	Loki *DeanonResult
	// NoneShare is the fraction of the population choosing privacy
	// level none — the users Loki cannot protect because they opted out
	// of noise.
	NoneShare float64
	// The utility half of the story: the requester's estimate of the
	// smoking distribution. SmokingTruth comes from the raw run's exact
	// answers; SmokingLoki is the randomized-response-debiased estimate
	// over the obfuscated uploads; SmokingMaxErr is their largest share
	// difference. The aggregate survives even though individuals became
	// unlinkable.
	SmokingTruth  []float64
	SmokingLoki   []float64
	SmokingMaxErr float64
}

// RunDefense (E7) runs the §2 pipeline twice: once raw and once with
// every worker's answers obfuscated at source at the worker's own
// preferred privacy level. Workers who choose level none stay exposed —
// at-source obfuscation protects exactly the users who opt in.
func RunDefense(cfg DefenseConfig) (*DefenseResult, error) {
	raw, err := RunDeanonymization(cfg.Deanon)
	if err != nil {
		return nil, fmt.Errorf("defense: raw run: %w", err)
	}

	obf, err := core.NewObfuscator(cfg.Schedule, cfg.Options)
	if err != nil {
		return nil, err
	}
	noiseRNG := rng.New(cfg.Deanon.Seed ^ 0x10c1)
	lokiCfg := cfg.Deanon
	lokiCfg.Platform.Transform = func(p *population.Person, s *survey.Survey, answers []survey.Answer) ([]survey.Answer, string, bool, error) {
		lvl := core.Level(p.PrivacyPref)
		noisy, err := obf.ObfuscateResponse(s, answers, lvl, noiseRNG, nil)
		if err != nil {
			return nil, "", false, err
		}
		return noisy, lvl.String(), lvl != core.None, nil
	}
	if cfg.AttackSlack < 0 {
		return nil, fmt.Errorf("defense: negative attack slack %g", cfg.AttackSlack)
	}
	lokiCfg.Attack.ConsistencySlack = cfg.AttackSlack

	loki, err := RunDeanonymization(lokiCfg)
	if err != nil {
		return nil, fmt.Errorf("defense: loki run: %w", err)
	}

	weights := cfg.Deanon.Population.PrivacyPrefWeights
	var total float64
	for _, w := range weights {
		total += w
	}
	noneShare := 0.0
	if total > 0 {
		noneShare = weights[core.None] / total
	}
	res := &DefenseResult{Raw: raw, Loki: loki, NoneShare: noneShare}
	if err := res.utilityCheck(cfg); err != nil {
		return nil, err
	}
	return res, nil
}

// utilityCheck demonstrates the other half of the paper's claim: with a
// properly sized cohort the requester's debiased smoking-distribution
// estimate from obfuscated uploads matches the truth, even though the
// same uploads defeat re-identification. The 60-person health survey of
// the attack run is far too small for randomized-response inversion, so
// the check surveys a UtilityCohort-sized sample through the same
// mechanism.
func (res *DefenseResult) utilityCheck(cfg DefenseConfig) error {
	const utilityCohort = 4000
	popCfg := cfg.Deanon.Population
	popCfg.RegistrySize = utilityCohort
	r := rng.New(cfg.Deanon.Seed ^ 0x5a5a)
	pop, err := population.Generate(popCfg, r.Split())
	if err != nil {
		return err
	}
	obf, err := core.NewObfuscator(cfg.Schedule, cfg.Options)
	if err != nil {
		return err
	}
	healthSurvey := survey.Health()
	smokingQ := healthSurvey.Question("smoking")

	truthCounts := make([]float64, len(survey.SmokingOptions))
	var responses []survey.Response
	noise := r.Split()
	for i := range pop.Persons {
		p := &pop.Persons[i]
		truthCounts[p.Smoking]++
		lvl := core.Level(p.PrivacyPref)
		noisy, err := obf.ObfuscateAnswer(smokingQ, survey.ChoiceAnswer(smokingQ.ID, int(p.Smoking)), lvl, noise)
		if err != nil {
			return err
		}
		responses = append(responses, survey.Response{
			SurveyID:     healthSurvey.ID,
			WorkerID:     fmt.Sprintf("u%05d", i),
			Answers:      []survey.Answer{noisy},
			PrivacyLevel: lvl.String(),
			Obfuscated:   lvl != core.None,
		})
	}
	est, err := aggregate.NewEstimator(cfg.Schedule)
	if err != nil {
		return err
	}
	ce, err := est.EstimateChoice(healthSurvey, smokingQ, responses)
	if err != nil {
		return fmt.Errorf("defense: utility aggregate: %w", err)
	}
	res.SmokingLoki = ce.Distribution()
	res.SmokingTruth = make([]float64, len(truthCounts))
	for i, c := range truthCounts {
		res.SmokingTruth[i] = c / float64(len(pop.Persons))
	}
	for i := range res.SmokingTruth {
		if d := math.Abs(res.SmokingTruth[i] - res.SmokingLoki[i]); d > res.SmokingMaxErr {
			res.SmokingMaxErr = d
		}
	}
	return nil
}

// Render reports E7.
func (res *DefenseResult) Render() string {
	t := NewTable("E7 (extension) — §2 attack vs Loki's at-source obfuscation",
		"quantity", "raw uploads (AMT)", "Loki uploads")
	t.AddVals("unique workers", res.Raw.Attack.UniqueWorkers, res.Loki.Attack.UniqueWorkers)
	t.AddVals("pass redundancy filter & linkable", res.Raw.Attack.Linkable, res.Loki.Attack.Linkable)
	t.AddVals("re-identified", res.Raw.Attack.Reidentified, res.Loki.Attack.Reidentified)
	t.AddVals("  confirmed correct", res.Raw.Attack.ReidentifiedCorrect, res.Loki.Attack.ReidentifiedCorrect)
	t.AddVals("respiratory health exposed", res.Raw.Attack.HealthExposed, res.Loki.Attack.HealthExposed)
	out := t.String() + fmt.Sprintf(
		"%s of users choose level none and remain exactly as exposed as on AMT;\n"+
			"every user who adds noise drops out of the re-identification set.\n",
		fmtPct(res.NoneShare))
	if len(res.SmokingTruth) > 0 {
		t2 := NewTable("\nutility survives (4000-user cohort): requester's smoking-distribution estimate",
			"option", "truth", "Loki (debiased)")
		for i, opt := range survey.SmokingOptions {
			t2.AddVals(opt, fmtPct(res.SmokingTruth[i]), fmtPct(res.SmokingLoki[i]))
		}
		out += t2.String() + fmt.Sprintf("largest share error: %s — individuals unlinkable, aggregate intact\n",
			fmtPct(res.SmokingMaxErr))
	}
	return out
}
