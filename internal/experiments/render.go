// Package experiments contains one reproducible harness per table and
// figure of the paper, plus the ablations called out in DESIGN.md. Every
// harness is a pure function of its config (which embeds a seed): it
// builds the substrates, runs the workload, and returns a typed result
// that knows how to render itself as text — the repository's equivalent
// of regenerating the paper's figures.
package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Table is a minimal ASCII table builder for experiment reports.
type Table struct {
	header []string
	rows   [][]string
	title  string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := 0; i < len(t.header) && i < len(cells); i++ {
		row[i] = cells[i]
	}
	t.rows = append(t.rows, row)
}

// AddVals appends a row, formatting each value with fmt.Sprint.
func (t *Table) AddVals(cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	t.AddRow(parts...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Sparkline renders values as a compact unicode bar series, used for the
// Fig. 2 deviation curves. NaN values render as spaces.
func Sparkline(values []float64) string {
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		// No finite values: every slot renders blank.
		return strings.Repeat(" ", len(values))
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			b.WriteRune(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// BarChart renders labelled horizontal bars scaled to maxWidth columns.
func BarChart(labels []string, values []float64, maxWidth int) string {
	if maxWidth < 1 {
		maxWidth = 40
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels) > i && len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(maxWidth))
		}
		fmt.Fprintf(&b, "  %-*s %s %.4g\n", maxL, label, strings.Repeat("█", n), v)
	}
	return b.String()
}

// fmtF renders a float compactly for tables.
func fmtF(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// fmtPct renders a ratio as a percentage.
func fmtPct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}
