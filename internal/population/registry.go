package population

import (
	"fmt"
	"sort"
)

// QuasiID is the quasi-identifier the paper's attack assembles from three
// surveys: full date of birth (year from the match-making survey,
// day/month from the astrology survey), gender, and ZIP code.
type QuasiID struct {
	BirthYear int
	MonthDay  int // month*100 + day
	Gender    Gender
	ZIP       int
}

// QuasiIDOf returns the person's true quasi-identifier.
func QuasiIDOf(p *Person) QuasiID {
	return QuasiID{BirthYear: p.BirthYear, MonthDay: p.MonthDay(), Gender: p.Gender, ZIP: p.ZIP}
}

// Key packs the quasi-identifier into a single comparable word:
// zip(17 bits) | year(11 bits) | monthday(11 bits) | gender(1 bit).
func (q QuasiID) Key() uint64 {
	return uint64(q.ZIP)<<23 | uint64(q.BirthYear&0x7ff)<<12 | uint64(q.MonthDay&0x7ff)<<1 | uint64(q.Gender&1)
}

// String renders the quasi-identifier for reports.
func (q QuasiID) String() string {
	return fmt.Sprintf("{dob=%04d-%02d-%02d %s zip=%05d}",
		q.BirthYear, q.MonthDay/100, q.MonthDay%100, q.Gender, q.ZIP)
}

// Registry is the public identified dataset (the voter-list / census
// analogue) an attacker joins quasi-identifiers against. It indexes every
// person by quasi-identifier key.
type Registry struct {
	byKey map[uint64][]int // key -> person IDs sharing it
	size  int
}

// NewRegistry indexes the population.
func NewRegistry(p *Population) *Registry {
	reg := &Registry{byKey: make(map[uint64][]int, len(p.Persons)), size: len(p.Persons)}
	for i := range p.Persons {
		k := QuasiIDOf(&p.Persons[i]).Key()
		reg.byKey[k] = append(reg.byKey[k], p.Persons[i].ID)
	}
	return reg
}

// Size returns the number of indexed persons.
func (r *Registry) Size() int { return r.size }

// Lookup returns the IDs of all persons matching the quasi-identifier.
func (r *Registry) Lookup(q QuasiID) []int {
	ids := r.byKey[q.Key()]
	out := make([]int, len(ids))
	copy(out, ids)
	return out
}

// KAnonymity returns the number of registry persons sharing the
// quasi-identifier (0 if absent).
func (r *Registry) KAnonymity(q QuasiID) int {
	return len(r.byKey[q.Key()])
}

// Identify returns the single person matching the quasi-identifier, if
// exactly one exists — a successful re-identification.
func (r *Registry) Identify(q QuasiID) (personID int, ok bool) {
	ids := r.byKey[q.Key()]
	if len(ids) == 1 {
		return ids[0], true
	}
	return 0, false
}

// FractionUnique returns the fraction of registry persons whose
// quasi-identifier is unique — the population-level re-identifiability
// the Sweeney/Golle studies measure (87% / 63%).
func (r *Registry) FractionUnique() float64 {
	if r.size == 0 {
		return 0
	}
	unique := 0
	for _, ids := range r.byKey {
		if len(ids) == 1 {
			unique++
		}
	}
	return float64(unique) / float64(r.size)
}

// KDistribution returns, for each anonymity-set size k present in the
// registry, how many persons sit in sets of that size, sorted by k.
func (r *Registry) KDistribution() []KBucket {
	counts := make(map[int]int)
	for _, ids := range r.byKey {
		counts[len(ids)] += len(ids)
	}
	out := make([]KBucket, 0, len(counts))
	for k, n := range counts {
		out = append(out, KBucket{K: k, Persons: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

// KBucket counts persons whose quasi-identifier anonymity set has size K.
type KBucket struct {
	K       int
	Persons int
}

// AttrMask selects which quasi-identifier attributes an attacker knows.
// The §2 surveys reveal them cumulatively: the astrology survey gives
// day/month of birth, the match-making survey adds birth year and
// gender, the coverage survey adds ZIP.
type AttrMask uint8

// Attribute mask bits.
const (
	MaskMonthDay AttrMask = 1 << iota
	MaskBirthYear
	MaskGender
	MaskZIP
)

// Survey-cumulative masks: what the attacker knows after each of the
// three profiling surveys.
const (
	MaskAfterAstrology   = MaskMonthDay
	MaskAfterMatchmaking = MaskMonthDay | MaskBirthYear | MaskGender
	MaskAfterCoverage    = MaskMonthDay | MaskBirthYear | MaskGender | MaskZIP
)

// String lists the attributes in the mask.
func (m AttrMask) String() string {
	s := ""
	add := func(label string) {
		if s != "" {
			s += "+"
		}
		s += label
	}
	if m&MaskMonthDay != 0 {
		add("day/month")
	}
	if m&MaskBirthYear != 0 {
		add("year")
	}
	if m&MaskGender != 0 {
		add("gender")
	}
	if m&MaskZIP != 0 {
		add("zip")
	}
	if s == "" {
		return "(nothing)"
	}
	return s
}

// maskedKey packs only the masked attributes of the quasi-identifier.
func maskedKey(q QuasiID, mask AttrMask) uint64 {
	var k uint64
	if mask&MaskZIP != 0 {
		k |= uint64(q.ZIP) << 23
	}
	if mask&MaskBirthYear != 0 {
		k |= uint64(q.BirthYear&0x7ff) << 12
	}
	if mask&MaskMonthDay != 0 {
		k |= uint64(q.MonthDay&0x7ff) << 1
	}
	if mask&MaskGender != 0 {
		k |= uint64(q.Gender & 1)
	}
	return k
}

// AnonymityStats summarises how identifiable the population is when the
// attacker knows only the masked attributes.
type AnonymityStats struct {
	Mask AttrMask
	// MedianK is the median (over persons) anonymity-set size.
	MedianK int
	// MeanK is the expected anonymity-set size of a random person
	// (Σ size² / N, i.e. size-weighted).
	MeanK float64
	// FractionUnique is the share of persons who are already unique.
	FractionUnique float64
}

// AnonymityStats computes the k-anonymity profile of the population
// under partial attacker knowledge — the Sweeney-style analysis behind
// ablation A6 (how fast anonymity collapses survey by survey).
func (p *Population) AnonymityStats(mask AttrMask) AnonymityStats {
	counts := make(map[uint64]int)
	for i := range p.Persons {
		counts[maskedKey(QuasiIDOf(&p.Persons[i]), mask)]++
	}
	n := len(p.Persons)
	sizes := make([]int, 0, n)
	unique := 0
	var sumSq float64
	for _, c := range counts {
		sumSq += float64(c) * float64(c)
		if c == 1 {
			unique++
		}
		for i := 0; i < c; i++ {
			sizes = append(sizes, c)
		}
	}
	sort.Ints(sizes)
	out := AnonymityStats{Mask: mask}
	if n > 0 {
		out.MedianK = sizes[n/2]
		out.MeanK = sumSq / float64(n)
		out.FractionUnique = float64(unique) / float64(n)
	}
	return out
}
