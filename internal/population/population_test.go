package population

import (
	"math"
	"testing"
	"testing/quick"

	"loki/internal/rng"
	"loki/internal/survey"
)

// smallConfig keeps generation fast in unit tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.RegistrySize = 5000
	cfg.NumZIPs = 10
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.RegistrySize = 0 },
		func(c *Config) { c.NumZIPs = 0 },
		func(c *Config) { c.ZIPSkew = 0 },
		func(c *Config) { c.BirthYearMax = c.BirthYearMin - 1 },
		func(c *Config) { c.RandomResponderRate = -0.1 },
		func(c *Config) { c.RandomResponderRate = 1.1 },
		func(c *Config) { c.SmokingDist = [4]float64{0, 0, 0, 0} },
		func(c *Config) { c.SmokingDist[0] = -1 },
		func(c *Config) { c.AwareRate = 2 },
		func(c *Config) { c.ParticipateIfAwareRate = -1 },
		func(c *Config) { c.PrivacyPrefWeights = [4]float64{} },
		func(c *Config) { c.PrivacyPrefWeights[2] = -5 },
	}
	for i, mut := range mutations {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := Generate(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Fatal("sizes differ")
	}
	for i := range a.Persons {
		if a.Persons[i] != b.Persons[i] {
			t.Fatalf("person %d differs between same-seed runs", i)
		}
	}
}

func TestGenerateAttributeRanges(t *testing.T) {
	cfg := smallConfig()
	pop, err := Generate(cfg, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if pop.Size() != cfg.RegistrySize {
		t.Fatalf("size = %d", pop.Size())
	}
	zips := map[int]bool{}
	for _, z := range pop.ZIPCodes {
		zips[z] = true
	}
	for i := range pop.Persons {
		p := &pop.Persons[i]
		if p.ID != i {
			t.Fatalf("person %d has ID %d", i, p.ID)
		}
		if p.BirthYear < cfg.BirthYearMin || p.BirthYear > cfg.BirthYearMax {
			t.Fatalf("birth year %d out of range", p.BirthYear)
		}
		if p.BirthMonth < 1 || p.BirthMonth > 12 {
			t.Fatalf("month %d", p.BirthMonth)
		}
		if p.BirthDay < 1 || p.BirthDay > daysInMonth[p.BirthMonth] {
			t.Fatalf("day %d in month %d", p.BirthDay, p.BirthMonth)
		}
		if !zips[p.ZIP] {
			t.Fatalf("zip %d not in ZIP set", p.ZIP)
		}
		if p.CoughDays < 0 || p.CoughDays > 7 {
			t.Fatalf("cough days %d", p.CoughDays)
		}
		if p.Opinion < 1 || p.Opinion > 5 {
			t.Fatalf("opinion %g", p.Opinion)
		}
		if p.PrivacyPref < 0 || p.PrivacyPref > 3 {
			t.Fatalf("privacy pref %d", p.PrivacyPref)
		}
		if p.Gender != Female && p.Gender != Male {
			t.Fatalf("gender %d", p.Gender)
		}
		if !p.Aware && p.WouldParticipate {
			t.Fatal("unaware person willing to participate (model says no)")
		}
		// The zodiac of the generated birthday is always valid.
		if survey.ZodiacOf(p.MonthDay()) < 0 {
			t.Fatalf("invalid zodiac for %d", p.MonthDay())
		}
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.NumZIPs = 0
	if _, err := Generate(cfg, rng.New(1)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestCoughCorrelatesWithSmoking(t *testing.T) {
	pop, err := Generate(smallConfig(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var sum [4]float64
	var n [4]int
	for i := range pop.Persons {
		p := &pop.Persons[i]
		sum[p.Smoking] += float64(p.CoughDays)
		n[p.Smoking]++
	}
	never := sum[NeverSmoked] / float64(n[NeverSmoked])
	daily := sum[DailySmoker] / float64(n[DailySmoker])
	if daily <= never+1 {
		t.Errorf("cough days not correlated: never=%.2f daily=%.2f", never, daily)
	}
}

func TestAwareRate(t *testing.T) {
	pop, err := Generate(smallConfig(), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	aware := 0
	for i := range pop.Persons {
		if pop.Persons[i].Aware {
			aware++
		}
	}
	got := float64(aware) / float64(pop.Size())
	if math.Abs(got-0.27) > 0.03 {
		t.Errorf("aware rate = %.3f, want ~0.27", got)
	}
}

func TestPersonDerived(t *testing.T) {
	p := Person{BirthYear: 1980, BirthMonth: 3, BirthDay: 21}
	if p.MonthDay() != 321 {
		t.Errorf("MonthDay = %d", p.MonthDay())
	}
	if p.Age() != survey.ReferenceYear-1980 {
		t.Errorf("Age = %d", p.Age())
	}
}

func TestUniquenessCalibration(t *testing.T) {
	// The default (full-size) registry must land in the literature band
	// the paper cites: 63% (Golle) to 87% (Sweeney).
	pop, err := Generate(DefaultConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(pop)
	got := reg.FractionUnique()
	if got < 0.55 || got > 0.92 {
		t.Errorf("quasi-identifier uniqueness %.3f outside the calibrated band", got)
	}
}

func TestUniquenessShrinksWithRegistrySize(t *testing.T) {
	// More people per ZIP means more quasi-identifier collisions: the
	// uniqueness fraction must fall as the region grows (the mechanism
	// behind Sweeney's 87% vs Golle's 63%).
	uniq := func(size int) float64 {
		cfg := DefaultConfig()
		cfg.RegistrySize = size
		pop, err := Generate(cfg, rng.New(2))
		if err != nil {
			t.Fatal(err)
		}
		return NewRegistry(pop).FractionUnique()
	}
	small := uniq(50_000)
	large := uniq(400_000)
	if large >= small {
		t.Errorf("uniqueness did not shrink with region size: %.3f (50k) vs %.3f (400k)", small, large)
	}
	if small < 0.75 {
		t.Errorf("small region uniqueness %.3f implausibly low", small)
	}
	if large > 0.75 {
		t.Errorf("large region uniqueness %.3f implausibly high", large)
	}
}

func TestRegistryLookups(t *testing.T) {
	pop, err := Generate(smallConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(pop)
	if reg.Size() != pop.Size() {
		t.Fatalf("registry size %d", reg.Size())
	}
	for i := 0; i < 100; i++ {
		p := &pop.Persons[i]
		qi := QuasiIDOf(p)
		ids := reg.Lookup(qi)
		found := false
		for _, id := range ids {
			if id == p.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("person %d not found by own quasi-identifier", p.ID)
		}
		if reg.KAnonymity(qi) != len(ids) {
			t.Fatal("KAnonymity disagrees with Lookup")
		}
		if id, ok := reg.Identify(qi); ok {
			if len(ids) != 1 || id != p.ID {
				t.Fatal("Identify returned wrong person")
			}
		} else if len(ids) == 1 {
			t.Fatal("unique person not identified")
		}
	}
	// Absent quasi-identifier.
	absent := QuasiID{BirthYear: 1900, MonthDay: 101, Gender: Female, ZIP: 99999}
	if got := reg.KAnonymity(absent); got != 0 {
		t.Errorf("absent QI k = %d", got)
	}
	if _, ok := reg.Identify(absent); ok {
		t.Error("absent QI identified")
	}
}

func TestRegistryKDistribution(t *testing.T) {
	pop, err := Generate(smallConfig(), rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(pop)
	total := 0
	prev := 0
	for _, b := range reg.KDistribution() {
		if b.K <= prev {
			t.Error("KDistribution not sorted ascending")
		}
		prev = b.K
		total += b.Persons
	}
	if total != reg.Size() {
		t.Errorf("KDistribution persons sum %d != size %d", total, reg.Size())
	}
}

func TestQuasiIDKeyInjective(t *testing.T) {
	err := quick.Check(func(y1, md1, z1, y2, md2, z2 uint16, g1, g2 bool) bool {
		a := QuasiID{
			BirthYear: 1900 + int(y1%130),
			MonthDay:  int(md1%1300) + 1,
			Gender:    Gender(b2i(g1)),
			ZIP:       int(z1),
		}
		b := QuasiID{
			BirthYear: 1900 + int(y2%130),
			MonthDay:  int(md2%1300) + 1,
			Gender:    Gender(b2i(g2)),
			ZIP:       int(z2),
		}
		if a == b {
			return a.Key() == b.Key()
		}
		return a.Key() != b.Key()
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Fatal(err)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestQuasiIDString(t *testing.T) {
	qi := QuasiID{BirthYear: 1980, MonthDay: 321, Gender: Male, ZIP: 10001}
	s := qi.String()
	for _, want := range []string{"1980", "03", "21", "Male", "10001"} {
		if !contains(s, want) {
			t.Errorf("QuasiID string %q lacks %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRespiratoryRisk(t *testing.T) {
	if RespiratoryRisk(NeverSmoked, 0) != 0 {
		t.Error("healthy person has nonzero risk")
	}
	if RespiratoryRisk(DailySmoker, 7) != 1 {
		t.Error("worst case risk != 1")
	}
	if !(RespiratoryRisk(DailySmoker, 3) > RespiratoryRisk(NeverSmoked, 3)) {
		t.Error("risk not monotone in smoking")
	}
	if !(RespiratoryRisk(FormerSmoker, 5) > RespiratoryRisk(FormerSmoker, 1)) {
		t.Error("risk not monotone in cough days")
	}
}

func TestEnumStrings(t *testing.T) {
	if Female.String() != "Female" || Male.String() != "Male" {
		t.Error("gender strings")
	}
	if NeverSmoked.String() != "Never smoked" {
		t.Error("smoking strings")
	}
	if Truthful.String() != "truthful" || RandomResponder.String() != "random-responder" {
		t.Error("behavior strings")
	}
	if Gender(9).String() == "" || Smoking(9).String() == "" || Behavior(9).String() == "" {
		t.Error("out-of-range enum strings empty")
	}
}
