package population

import (
	"testing"

	"loki/internal/rng"
)

func TestAttrMaskString(t *testing.T) {
	if got := MaskAfterCoverage.String(); got != "day/month+year+gender+zip" {
		t.Errorf("full mask = %q", got)
	}
	if got := AttrMask(0).String(); got != "(nothing)" {
		t.Errorf("empty mask = %q", got)
	}
	if got := MaskGender.String(); got != "gender" {
		t.Errorf("gender mask = %q", got)
	}
}

func TestMaskedKeySubsumesFullKey(t *testing.T) {
	q := QuasiID{BirthYear: 1980, MonthDay: 321, Gender: Male, ZIP: 10001}
	if maskedKey(q, MaskAfterCoverage) != q.Key() {
		t.Error("full mask key differs from QuasiID.Key")
	}
	// Masked keys ignore the hidden attributes.
	q2 := q
	q2.ZIP = 99999
	if maskedKey(q, MaskAfterMatchmaking) != maskedKey(q2, MaskAfterMatchmaking) {
		t.Error("mask without zip still distinguishes zips")
	}
	if maskedKey(q, MaskAfterCoverage) == maskedKey(q2, MaskAfterCoverage) {
		t.Error("mask with zip ignores zips")
	}
}

func TestAnonymityStatsCollapse(t *testing.T) {
	cfg := smallConfig()
	cfg.RegistrySize = 20_000
	pop, err := Generate(cfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	md := pop.AnonymityStats(MaskAfterAstrology)
	mid := pop.AnonymityStats(MaskAfterMatchmaking)
	full := pop.AnonymityStats(MaskAfterCoverage)

	if md.MedianK <= mid.MedianK || mid.MedianK < full.MedianK {
		t.Errorf("median k not collapsing: %d -> %d -> %d", md.MedianK, mid.MedianK, full.MedianK)
	}
	if md.FractionUnique > mid.FractionUnique || mid.FractionUnique > full.FractionUnique {
		t.Error("uniqueness not growing with attributes")
	}
	// Day/month alone: ~20000/366 ≈ 55 per birthday.
	if md.MedianK < 20 || md.MedianK > 120 {
		t.Errorf("day/month median k = %d, expected around 55", md.MedianK)
	}
	if md.MeanK < float64(md.MedianK)/2 {
		t.Errorf("mean k %.1f implausibly below median %d", md.MeanK, md.MedianK)
	}
	// Full-mask uniqueness agrees with the registry's computation.
	reg := NewRegistry(pop)
	if diff := full.FractionUnique - reg.FractionUnique(); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("mask uniqueness %.4f != registry %.4f", full.FractionUnique, reg.FractionUnique())
	}
}

func TestAnonymityStatsEmpty(t *testing.T) {
	p := &Population{}
	st := p.AnonymityStats(MaskAfterCoverage)
	if st.MedianK != 0 || st.MeanK != 0 || st.FractionUnique != 0 {
		t.Errorf("empty population stats = %+v", st)
	}
}
