package population

import (
	"testing"

	"loki/internal/rng"
	"loki/internal/survey"
)

func onePerson(t *testing.T, seed uint64) (*Population, *Person) {
	t.Helper()
	cfg := smallConfig()
	cfg.RegistrySize = 50
	cfg.RandomResponderRate = 0
	pop, err := Generate(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return pop, &pop.Persons[0]
}

func TestTruthfulAnswersValidAndConsistent(t *testing.T) {
	_, p := onePerson(t, 11)
	r := rng.New(12)
	for _, sv := range []*survey.Survey{
		survey.Astrology(), survey.Matchmaking(), survey.Coverage(),
		survey.Health(), survey.Awareness(),
	} {
		answers, err := TruthfulAnswers(p, sv, r)
		if err != nil {
			t.Fatalf("%s: %v", sv.ID, err)
		}
		resp := survey.Response{SurveyID: sv.ID, WorkerID: "w", Answers: answers}
		if err := resp.Validate(sv); err != nil {
			t.Fatalf("%s: truthful answers invalid: %v", sv.ID, err)
		}
		if !resp.Consistent(sv, 0) {
			t.Fatalf("%s: truthful answers inconsistent", sv.ID)
		}
	}
}

func TestTruthfulAnswersMatchAttributes(t *testing.T) {
	_, p := onePerson(t, 13)
	r := rng.New(14)

	astro, err := TruthfulAnswers(p, survey.Astrology(), r)
	if err != nil {
		t.Fatal(err)
	}
	resp := survey.Response{Answers: astro}
	if got := resp.Answer("birth-md").Rating; int(got) != p.MonthDay() {
		t.Errorf("birth-md = %g, want %d", got, p.MonthDay())
	}
	if got := resp.Answer("star-sign").Choice; got != survey.ZodiacOf(p.MonthDay()) {
		t.Errorf("star sign %d does not match birthday", got)
	}

	match, err := TruthfulAnswers(p, survey.Matchmaking(), r)
	if err != nil {
		t.Fatal(err)
	}
	resp = survey.Response{Answers: match}
	if got := resp.Answer("birth-year").Rating; int(got) != p.BirthYear {
		t.Errorf("birth-year = %g", got)
	}
	if got := resp.Answer("gender").Choice; got != int(p.Gender) {
		t.Errorf("gender = %d", got)
	}

	cov, err := TruthfulAnswers(p, survey.Coverage(), r)
	if err != nil {
		t.Fatal(err)
	}
	resp = survey.Response{Answers: cov}
	if got := resp.Answer("zip").Rating; int(got) != p.ZIP {
		t.Errorf("zip = %g, want %d", got, p.ZIP)
	}

	health, err := TruthfulAnswers(p, survey.Health(), r)
	if err != nil {
		t.Fatal(err)
	}
	resp = survey.Response{Answers: health}
	if got := resp.Answer("smoking").Choice; got != int(p.Smoking) {
		t.Errorf("smoking = %d", got)
	}
	if got := resp.Answer("cough-days").Rating; int(got) != p.CoughDays {
		t.Errorf("cough-days = %g", got)
	}

	aw, err := TruthfulAnswers(p, survey.Awareness(), r)
	if err != nil {
		t.Fatal(err)
	}
	resp = survey.Response{Answers: aw}
	wantAware := 1
	if p.Aware {
		wantAware = 0
	}
	if got := resp.Answer("aware").Choice; got != wantAware {
		t.Errorf("aware answer = %d, person.Aware = %v", got, p.Aware)
	}
}

func TestAnswersDispatch(t *testing.T) {
	pop, _ := onePerson(t, 15)
	r := rng.New(16)
	p := &pop.Persons[1]
	p.Behavior = RandomResponder
	answers, err := Answers(p, survey.Astrology(), r)
	if err != nil {
		t.Fatal(err)
	}
	resp := survey.Response{SurveyID: survey.AstrologyID, WorkerID: "w", Answers: answers}
	if err := resp.Validate(survey.Astrology()); err != nil {
		t.Fatalf("random answers invalid: %v", err)
	}
}

func TestRandomAnswersMostlyInconsistent(t *testing.T) {
	r := rng.New(17)
	sv := survey.Astrology()
	inconsistent := 0
	const n = 500
	for i := 0; i < n; i++ {
		resp := survey.Response{SurveyID: sv.ID, WorkerID: "w", Answers: RandomAnswers(sv, r)}
		if !resp.Consistent(sv, 0) {
			inconsistent++
		}
	}
	// A uniform responder passes the zodiac check with probability well
	// under 10%, and must also pass the opinion pair.
	if inconsistent < n*8/10 {
		t.Errorf("only %d/%d random responses filtered", inconsistent, n)
	}
}

func TestLecturerPanel(t *testing.T) {
	if _, err := NewLecturerPanel(0, rng.New(1)); err == nil {
		t.Error("0 lecturers accepted")
	}
	panel, err := NewLecturerPanel(13, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Names) != 13 || len(panel.Qualities) != 13 {
		t.Fatal("panel size wrong")
	}
	if panel.Qualities[AnecdoteLecturer] != AnecdoteQuality {
		t.Errorf("anecdote lecturer quality = %g", panel.Qualities[AnecdoteLecturer])
	}
	for j, q := range panel.Qualities {
		if q < 1 || q > 5 {
			t.Errorf("lecturer %d quality %g outside scale", j, q)
		}
	}
	sv := panel.Survey()
	if err := sv.Validate(); err != nil {
		t.Fatalf("panel survey invalid: %v", err)
	}
	if len(sv.Questions) != 13 {
		t.Fatal("panel survey question count")
	}

	p := Person{Leniency: 0.2}
	r := rng.New(19)
	for i := 0; i < 200; i++ {
		v, err := panel.TrueRating(&p, i%13, r)
		if err != nil {
			t.Fatal(err)
		}
		if v < 1 || v > 5 || v != float64(int(v)) {
			t.Fatalf("rating %g not an integer in [1,5]", v)
		}
	}
	if _, err := panel.TrueRating(&p, 13, r); err == nil {
		t.Error("out-of-range lecturer accepted")
	}
	if _, err := panel.TrueRating(&p, -1, r); err == nil {
		t.Error("negative lecturer accepted")
	}
}

func TestSingleLecturerPanel(t *testing.T) {
	panel, err := NewLecturerPanel(1, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	if panel.Qualities[0] != AnecdoteQuality {
		t.Errorf("single-lecturer quality = %g", panel.Qualities[0])
	}
}
