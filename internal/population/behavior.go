package population

import (
	"fmt"
	"math"

	"loki/internal/rng"
	"loki/internal/survey"
)

// Answers produces the person's raw (pre-obfuscation) answers to the
// survey, honouring their response behaviour: truthful respondents answer
// from their attributes, random responders answer uniformly.
func Answers(p *Person, s *survey.Survey, r *rng.RNG) ([]survey.Answer, error) {
	if p.Behavior == RandomResponder {
		return RandomAnswers(s, r), nil
	}
	return TruthfulAnswers(p, s, r)
}

// TruthfulAnswers derives an answer to every question from the person's
// attributes. Opinion questions are answered from the latent opinion
// propensity; demographic and health questions are answered exactly —
// the paper's premise is that honest workers reveal true personal facts.
func TruthfulAnswers(p *Person, s *survey.Survey, r *rng.RNG) ([]survey.Answer, error) {
	out := make([]survey.Answer, 0, len(s.Questions))
	for i := range s.Questions {
		q := &s.Questions[i]
		a, err := truthfulAnswer(p, q, r)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

func truthfulAnswer(p *Person, q *survey.Question, r *rng.RNG) (survey.Answer, error) {
	switch q.Attribute {
	case survey.AttrStarSign:
		return survey.ChoiceAnswer(q.ID, survey.ZodiacOf(p.MonthDay())), nil
	case survey.AttrBirthDayMonth:
		return survey.NumericAnswer(q.ID, float64(p.MonthDay())), nil
	case survey.AttrBirthYear:
		return survey.NumericAnswer(q.ID, float64(p.BirthYear)), nil
	case survey.AttrAge:
		return survey.NumericAnswer(q.ID, float64(p.Age())), nil
	case survey.AttrGender:
		return survey.ChoiceAnswer(q.ID, int(p.Gender)), nil
	case survey.AttrZIP:
		return survey.NumericAnswer(q.ID, float64(p.ZIP)), nil
	case survey.AttrSmoking:
		return survey.ChoiceAnswer(q.ID, int(p.Smoking)), nil
	case survey.AttrCough:
		return survey.NumericAnswer(q.ID, float64(p.CoughDays)), nil
	case survey.AttrAwareness:
		return survey.ChoiceAnswer(q.ID, yesNoIndex(p.Aware)), nil
	case survey.AttrParticipation:
		return survey.ChoiceAnswer(q.ID, yesNoIndex(p.WouldParticipate)), nil
	case survey.AttrOpinion, survey.AttrNone:
		return fillerAnswer(p, q, r), nil
	default:
		return survey.Answer{}, fmt.Errorf("population: no truthful answer model for attribute %q", q.Attribute)
	}
}

// yesNoIndex maps a boolean onto the survey.YesNo option order.
func yesNoIndex(yes bool) int {
	if yes {
		return 0
	}
	return 1
}

// fillerAnswer answers a non-identifying question from the person's
// opinion propensity. Two opinion ratings by the same person land within
// one point of each other with high probability, so truthful respondents
// pass opinion-pair redundancy checks.
func fillerAnswer(p *Person, q *survey.Question, r *rng.RNG) survey.Answer {
	switch q.Kind {
	case survey.Rating:
		v := clampRound(p.Opinion+r.Normal(0, 0.3), q.ScaleMin, q.ScaleMax)
		return survey.RatingAnswer(q.ID, v)
	case survey.Numeric:
		v := clampRound(p.Opinion/5*(q.ScaleMax-q.ScaleMin)+q.ScaleMin, q.ScaleMin, q.ScaleMax)
		return survey.NumericAnswer(q.ID, v)
	case survey.MultipleChoice:
		return survey.ChoiceAnswer(q.ID, r.Intn(len(q.Options)))
	default:
		return survey.TextAnswer(q.ID, "")
	}
}

func clampRound(v, lo, hi float64) float64 {
	v = math.Round(v)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RandomAnswers answers every question uniformly at random over its
// domain — the inattentive-worker model the paper's redundancy checks are
// designed to catch.
func RandomAnswers(s *survey.Survey, r *rng.RNG) []survey.Answer {
	out := make([]survey.Answer, 0, len(s.Questions))
	for i := range s.Questions {
		q := &s.Questions[i]
		switch q.Kind {
		case survey.Rating:
			out = append(out, survey.RatingAnswer(q.ID, float64(r.IntRange(int(q.ScaleMin), int(q.ScaleMax)))))
		case survey.Numeric:
			out = append(out, survey.NumericAnswer(q.ID, float64(r.IntRange(int(q.ScaleMin), int(q.ScaleMax)))))
		case survey.MultipleChoice:
			out = append(out, survey.ChoiceAnswer(q.ID, r.Intn(len(q.Options))))
		default:
			out = append(out, survey.TextAnswer(q.ID, "n/a"))
		}
	}
	return out
}

// LecturerPanel is the ground truth for the Loki lecturer-rating trial:
// per-lecturer base quality on the 1..5 scale. The noiseless cohort mean
// of each lecturer is the "university trusted-third-party rating" the
// paper compares against.
type LecturerPanel struct {
	Names     []string
	Qualities []float64
}

// NewLecturerPanel creates n lecturers with qualities spread over
// [2.8, 4.8], shuffled so the ordering carries no information. One
// lecturer is pinned to quality 4.61 — the paper's §3.2 anecdote
// (an author's true university rating) — at index AnecdoteLecturer.
func NewLecturerPanel(n int, r *rng.RNG) (*LecturerPanel, error) {
	if n < 1 {
		return nil, fmt.Errorf("population: lecturer panel needs n >= 1, got %d", n)
	}
	names := make([]string, n)
	qual := make([]float64, n)
	for i := range qual {
		names[i] = fmt.Sprintf("Lecturer %c", 'A'+i%26)
		if n == 1 {
			qual[i] = AnecdoteQuality
		} else {
			qual[i] = 2.8 + 2.0*float64(i)/float64(n-1)
		}
	}
	r.Shuffle(n, func(i, j int) { qual[i], qual[j] = qual[j], qual[i] })
	qual[AnecdoteLecturer%n] = AnecdoteQuality
	return &LecturerPanel{Names: names, Qualities: qual}, nil
}

// AnecdoteLecturer is the panel index of the lecturer pinned to the
// paper's 4.61 true rating.
const AnecdoteLecturer = 0

// AnecdoteQuality is the paper's reported trusted-third-party rating for
// one author (4.61 out of 5).
const AnecdoteQuality = 4.61

// TrueRating returns the person's honest 1..5 rating of lecturer j:
// the lecturer's quality shifted by the person's leniency plus a little
// idiosyncratic taste, rounded to the discrete star scale.
func (lp *LecturerPanel) TrueRating(p *Person, j int, r *rng.RNG) (float64, error) {
	if j < 0 || j >= len(lp.Qualities) {
		return 0, fmt.Errorf("population: lecturer index %d outside [0, %d)", j, len(lp.Qualities))
	}
	return clampRound(lp.Qualities[j]+p.Leniency+r.Normal(0, 0.4), 1, 5), nil
}

// Survey returns the lecturer-rating survey for this panel.
func (lp *LecturerPanel) Survey() *survey.Survey {
	return survey.Lecturers(lp.Names)
}
