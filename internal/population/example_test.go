package population_test

import (
	"fmt"

	"loki/internal/population"
	"loki/internal/rng"
)

// ExampleRegistry_Identify shows re-identification in miniature: a
// person's quasi-identifier either pins them uniquely in the registry or
// hides them in an anonymity set.
func ExampleRegistry_Identify() {
	cfg := population.DefaultConfig()
	cfg.RegistrySize = 50_000
	pop, _ := population.Generate(cfg, rng.New(1))
	reg := population.NewRegistry(pop)

	qi := population.QuasiIDOf(&pop.Persons[0])
	if id, ok := reg.Identify(qi); ok {
		fmt.Printf("person %d re-identified from %v\n", id, qi)
	} else {
		fmt.Printf("anonymity set of size %d\n", reg.KAnonymity(qi))
	}
	fmt.Printf("region-wide uniqueness: %.0f%%\n", 100*reg.FractionUnique())
	// Output:
	// person 0 re-identified from {dob=1943-09-16 Female zip=10003}
	// region-wide uniqueness: 92%
}

// ExamplePopulation_AnonymityStats shows the survey-by-survey anonymity
// collapse of ablation A6.
func ExamplePopulation_AnonymityStats() {
	cfg := population.DefaultConfig()
	cfg.RegistrySize = 50_000
	pop, _ := population.Generate(cfg, rng.New(1))
	for _, mask := range []population.AttrMask{
		population.MaskAfterAstrology,
		population.MaskAfterMatchmaking,
		population.MaskAfterCoverage,
	} {
		st := pop.AnonymityStats(mask)
		fmt.Printf("%-27s median k = %d\n", mask, st.MedianK)
	}
	// Output:
	// day/month                   median k = 138
	// day/month+year+gender       median k = 2
	// day/month+year+gender+zip   median k = 1
}
