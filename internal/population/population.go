// Package population generates the synthetic population that replaces the
// paper's human participants: persons with date of birth, gender, ZIP
// code, smoking/coughing attributes, awareness of profiling, privacy
// preferences and response behaviour, plus the public census-style
// registry the attacker matches quasi-identifiers against.
//
// The generator is calibrated so that the fraction of persons uniquely
// identified by {date of birth, gender, ZIP} lands in the range reported
// by the literature the paper cites (Sweeney 2000: 87% with full DOB;
// Golle 2006: 63% on census data) — re-identification rates in the attack
// experiments are therefore driven by the same mechanism as in the paper,
// quasi-identifier uniqueness, not by construction.
package population

import (
	"fmt"

	"loki/internal/rng"
	"loki/internal/survey"
)

// Gender indexes survey.Genders: 0 = female, 1 = male.
type Gender int

// Gender values.
const (
	Female Gender = iota
	Male
)

// String returns the catalog label for the gender.
func (g Gender) String() string {
	if int(g) >= 0 && int(g) < len(survey.Genders) {
		return survey.Genders[g]
	}
	return fmt.Sprintf("Gender(%d)", int(g))
}

// Smoking indexes survey.SmokingOptions.
type Smoking int

// Smoking categories, matching survey.SmokingOptions order.
const (
	NeverSmoked Smoking = iota
	FormerSmoker
	OccasionalSmoker
	DailySmoker
)

// String returns the catalog label for the smoking category.
func (s Smoking) String() string {
	if int(s) >= 0 && int(s) < len(survey.SmokingOptions) {
		return survey.SmokingOptions[s]
	}
	return fmt.Sprintf("Smoking(%d)", int(s))
}

// Behavior describes how a person answers surveys.
type Behavior int

const (
	// Truthful respondents answer questions from their attributes.
	Truthful Behavior = iota
	// RandomResponder answers uniformly at random — the population the
	// paper filters out through redundancy checks.
	RandomResponder
)

// String names the behaviour.
func (b Behavior) String() string {
	switch b {
	case Truthful:
		return "truthful"
	case RandomResponder:
		return "random-responder"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// Person is one synthetic individual. The identifying triple the paper's
// attack recovers is (BirthYear, BirthMonth/BirthDay, Gender, ZIP).
type Person struct {
	// ID is the registry identity ("who this really is"). Recovering it
	// from survey responses is what "de-anonymization" means here.
	ID int
	// Demographics (the quasi-identifier).
	BirthYear  int
	BirthMonth int // 1..12
	BirthDay   int // 1..28/30/31 depending on month
	Gender     Gender
	ZIP        int
	// Sensitive health attributes (the paper's fourth survey).
	Smoking   Smoking
	CoughDays int // days per week with coughing episodes, 0..7
	// Survey behaviour.
	Behavior Behavior
	// Opinion is a latent [1, 5] propensity used for filler opinion
	// questions.
	Opinion float64
	// Aware is whether the person knows requesters can profile them;
	// WouldParticipate is their stated willingness to take surveys if
	// profiled (the paper's follow-up survey).
	Aware            bool
	WouldParticipate bool
	// PrivacyPref is the Loki privacy level the person picks
	// (0=none, 1=low, 2=medium, 3=high).
	PrivacyPref int
	// Leniency shifts the person's lecturer ratings up or down.
	Leniency float64
}

// MonthDay returns the person's birth day/month in the month*100+day
// encoding used by the astrology survey.
func (p *Person) MonthDay() int { return survey.MonthDay(p.BirthMonth, p.BirthDay) }

// Age returns the person's age at the survey.ReferenceYear (ignoring
// whether the birthday has passed; the consistency rule tolerates ±1).
func (p *Person) Age() int { return survey.ReferenceYear - p.BirthYear }

// Config parameterizes population generation. The zero value is not
// valid; start from DefaultConfig.
type Config struct {
	// RegistrySize is the number of persons in the public registry (the
	// simulated metro region). Workers are drawn from the registry.
	RegistrySize int
	// NumZIPs is the number of ZIP codes in the region; ZIP population
	// shares follow a Zipf distribution with exponent ZIPSkew.
	NumZIPs int
	ZIPSkew float64
	// BirthYearMin and BirthYearMax bound the adult population's birth
	// years (inclusive).
	BirthYearMin, BirthYearMax int
	// RandomResponderRate is the fraction of the population that answers
	// surveys uniformly at random.
	RandomResponderRate float64
	// SmokingDist is the distribution over the four smoking categories.
	SmokingDist [4]float64
	// AwareRate is P(person knows profiling is possible). The paper's
	// follow-up survey found 27% awareness.
	AwareRate float64
	// ParticipateIfAwareRate is P(would participate | aware); unaware
	// persons answer "would not participate" per the paper's phrasing.
	ParticipateIfAwareRate float64
	// PrivacyPrefWeights is the unnormalized distribution over the four
	// Loki privacy levels. Defaults follow the trial's observed take-up
	// 18/32/51/30.
	PrivacyPrefWeights [4]float64
}

// DefaultConfig returns the configuration used by the reproduction
// experiments: a metro-scale registry calibrated so {DOB, gender, ZIP}
// uniqueness falls in the 60–90% band the literature reports.
func DefaultConfig() Config {
	return Config{
		RegistrySize:           200_000,
		NumZIPs:                60,
		ZIPSkew:                1.0,
		BirthYearMin:           1935,
		BirthYearMax:           1995,
		RandomResponderRate:    0.10,
		SmokingDist:            [4]float64{0.55, 0.15, 0.12, 0.18},
		AwareRate:              0.27,
		ParticipateIfAwareRate: 0.55,
		PrivacyPrefWeights:     [4]float64{18, 32, 51, 30},
	}
}

// Validate reports whether the configuration is usable.
func (c *Config) Validate() error {
	if c.RegistrySize < 1 {
		return fmt.Errorf("population: registry size %d < 1", c.RegistrySize)
	}
	if c.NumZIPs < 1 {
		return fmt.Errorf("population: number of ZIPs %d < 1", c.NumZIPs)
	}
	if c.ZIPSkew <= 0 {
		return fmt.Errorf("population: ZIP skew %g <= 0", c.ZIPSkew)
	}
	if c.BirthYearMax < c.BirthYearMin {
		return fmt.Errorf("population: birth year range [%d, %d] inverted", c.BirthYearMin, c.BirthYearMax)
	}
	if c.RandomResponderRate < 0 || c.RandomResponderRate > 1 {
		return fmt.Errorf("population: random responder rate %g outside [0, 1]", c.RandomResponderRate)
	}
	var sd float64
	for _, w := range c.SmokingDist {
		if w < 0 {
			return fmt.Errorf("population: negative smoking weight %g", w)
		}
		sd += w
	}
	if sd == 0 {
		return fmt.Errorf("population: smoking distribution sums to zero")
	}
	if c.AwareRate < 0 || c.AwareRate > 1 {
		return fmt.Errorf("population: aware rate %g outside [0, 1]", c.AwareRate)
	}
	if c.ParticipateIfAwareRate < 0 || c.ParticipateIfAwareRate > 1 {
		return fmt.Errorf("population: participate-if-aware rate %g outside [0, 1]", c.ParticipateIfAwareRate)
	}
	var pw float64
	for _, w := range c.PrivacyPrefWeights {
		if w < 0 {
			return fmt.Errorf("population: negative privacy preference weight %g", w)
		}
		pw += w
	}
	if pw == 0 {
		return fmt.Errorf("population: privacy preference weights sum to zero")
	}
	return nil
}

// Population is a generated registry of persons plus the ZIP model used
// to create it.
type Population struct {
	Persons []Person
	// ZIPCodes holds the actual 5-digit codes; ZIPOf[i] is the index into
	// ZIPCodes of Persons[i].ZIP (kept for reporting).
	ZIPCodes []int
	cfg      Config
}

// daysInMonth ignores leap years: the registry and the survey answers use
// the same calendar, so February 29 never appears on either side and
// cannot break a join.
var daysInMonth = [13]int{0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

// Generate creates a population from the configuration. Generation is
// deterministic given the RNG's seed.
func Generate(cfg Config, r *rng.RNG) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	zipf := rng.NewZipf(cfg.NumZIPs, cfg.ZIPSkew)
	// Assign stable 5-digit codes to ZIP ranks: 10001, 10002, ...
	zipCodes := make([]int, cfg.NumZIPs)
	for i := range zipCodes {
		zipCodes[i] = 10001 + i
	}
	smokingW := cfg.SmokingDist[:]
	privacyW := cfg.PrivacyPrefWeights[:]
	yearSpan := cfg.BirthYearMax - cfg.BirthYearMin + 1

	persons := make([]Person, cfg.RegistrySize)
	for i := range persons {
		month := 1 + r.Intn(12)
		day := 1 + r.Intn(daysInMonth[month])
		smoking := Smoking(r.MustCategorical(smokingW))
		aware := r.Bernoulli(cfg.AwareRate)
		participate := false
		if aware {
			participate = r.Bernoulli(cfg.ParticipateIfAwareRate)
		}
		behavior := Truthful
		if r.Bernoulli(cfg.RandomResponderRate) {
			behavior = RandomResponder
		}
		persons[i] = Person{
			ID:               i,
			BirthYear:        cfg.BirthYearMin + r.Intn(yearSpan),
			BirthMonth:       month,
			BirthDay:         day,
			Gender:           Gender(r.Intn(2)),
			ZIP:              zipCodes[zipf.Draw(r)],
			Smoking:          smoking,
			CoughDays:        coughDays(smoking, r),
			Behavior:         behavior,
			Opinion:          1 + 4*r.Float64(),
			Aware:            aware,
			WouldParticipate: participate,
			PrivacyPref:      r.MustCategorical(privacyW),
			Leniency:         r.Normal(0, 0.35),
		}
	}
	return &Population{Persons: persons, ZIPCodes: zipCodes, cfg: cfg}, nil
}

// coughDays draws weekly coughing days conditional on smoking category.
func coughDays(s Smoking, r *rng.RNG) int {
	means := [4]float64{0.5, 1.0, 2.0, 3.5}
	d := r.Poisson(means[s])
	if d > 7 {
		d = 7
	}
	return d
}

// Config returns the configuration the population was generated with.
func (p *Population) Config() Config { return p.cfg }

// Size returns the number of persons.
func (p *Population) Size() int { return len(p.Persons) }

// RespiratoryRisk scores a person's respiratory health from the health
// survey's two answers, on [0, 1]. The paper infers "respiratory health
// (and likelihood of tuberculosis)"; this is the analogous derived score
// an attacker would compute from linked answers.
func RespiratoryRisk(smoking Smoking, coughDays int) float64 {
	smokeW := [4]float64{0, 0.2, 0.4, 0.6}[smoking]
	coughW := 0.4 * float64(coughDays) / 7
	risk := smokeW + coughW
	if risk > 1 {
		risk = 1
	}
	return risk
}
