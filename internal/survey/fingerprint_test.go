package survey

import (
	"encoding/json"
	"testing"
)

func TestFingerprintStability(t *testing.T) {
	sv := Awareness()
	fp := sv.Fingerprint()
	if fp == "" || len(fp) != 64 {
		t.Fatalf("fingerprint = %q", fp)
	}
	if sv.Clone().Fingerprint() != fp {
		t.Error("clone fingerprints differently")
	}
	// Stable across a JSON round trip — the shape a definition has after
	// store replay.
	b, err := json.Marshal(sv)
	if err != nil {
		t.Fatal(err)
	}
	var back Survey
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != fp {
		t.Error("fingerprint changed across marshal/unmarshal")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Awareness()
	fp := base.Fingerprint()
	mutations := []func(*Survey){
		func(s *Survey) { s.Title = "x" },
		func(s *Survey) { s.RewardCents++ },
		func(s *Survey) { s.Questions[0].Text = "x" },
		func(s *Survey) { s.Questions[0].Options = append(s.Questions[0].Options, "maybe") },
		func(s *Survey) { s.Questions = s.Questions[:len(s.Questions)-1] },
	}
	for i, mutate := range mutations {
		sv := Awareness()
		mutate(sv)
		if sv.Fingerprint() == fp {
			t.Errorf("mutation %d not reflected in fingerprint", i)
		}
	}
}
