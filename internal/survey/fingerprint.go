package survey

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Fingerprint returns a stable content hash of the survey definition —
// ID, questions, consistency pairs, reward, everything a response or an
// aggregate is interpreted against. Two definitions fingerprint equal iff
// their JSON forms are identical, and the JSON form is stable across a
// marshal/unmarshal round trip (struct field order is fixed and omitempty
// drops nil and empty slices alike), so a fingerprint taken before a
// restart matches the one recomputed from a replayed store.
//
// The read path uses fingerprints to detect republished definitions:
// live accumulators and durable checkpoints record the fingerprint they
// were folded under, and any state carrying a stale fingerprint is
// invalid — its bins were laid out for a different question set.
func (s *Survey) Fingerprint() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Survey contains only marshalable fields (strings, numbers,
		// bools, slices thereof); Marshal cannot fail on it.
		panic("survey: fingerprint marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
