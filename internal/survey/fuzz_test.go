package survey

import (
	"encoding/json"
	"testing"
)

// FuzzSurveyDecode: arbitrary JSON must never panic the survey decoder
// or validator, and anything that validates must re-encode.
func FuzzSurveyDecode(f *testing.F) {
	seed, _ := json.Marshal(Astrology())
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"id":"x","questions":[{"id":"q","kind":99}]}`))
	f.Add([]byte(`{"id":"x","questions":[{"id":"q","kind":0,"scale_min":5,"scale_max":1}]}`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Survey
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			return
		}
		if _, err := json.Marshal(&s); err != nil {
			t.Errorf("valid survey failed to re-encode: %v", err)
		}
	})
}

// FuzzZodiac: ZodiacOf is total over int and always lands in [-1, 11].
func FuzzZodiac(f *testing.F) {
	f.Add(101)
	f.Add(1231)
	f.Add(0)
	f.Add(-50)
	f.Add(99999)
	f.Fuzz(func(t *testing.T, md int) {
		sign := ZodiacOf(md)
		if sign < -1 || sign > 11 {
			t.Fatalf("ZodiacOf(%d) = %d", md, sign)
		}
		month, day := md/100, md%100
		valid := month >= 1 && month <= 12 && day >= 1 && day <= 31
		if valid && sign == -1 {
			t.Fatalf("valid date %d rejected", md)
		}
		if !valid && sign != -1 {
			t.Fatalf("invalid date %d accepted as %d", md, sign)
		}
	})
}
