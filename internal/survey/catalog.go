package survey

import "fmt"

// ZodiacSigns lists the western zodiac signs in the option order used by
// every star-sign question in the catalog.
var ZodiacSigns = []string{
	"Aries", "Taurus", "Gemini", "Cancer", "Leo", "Virgo",
	"Libra", "Scorpio", "Sagittarius", "Capricorn", "Aquarius", "Pisces",
}

// ZodiacOf returns the ZodiacSigns index for a birth day/month encoded as
// month*100+day (e.g. 321 = 21 March). Out-of-range encodings return -1.
func ZodiacOf(monthDay int) int {
	month, day := monthDay/100, monthDay%100
	if month < 1 || month > 12 || day < 1 || day > 31 {
		return -1
	}
	// Sign boundaries, tropical zodiac. boundaries[m] is the day within
	// month m (1-based) on which the later sign begins.
	boundaries := [13]int{0, 20, 19, 21, 20, 21, 21, 23, 23, 23, 23, 22, 22}
	// signAtStart[m] is the sign in effect on the 1st of month m.
	signAtStart := [13]int{0, 9, 10, 11, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	sign := signAtStart[month]
	if day >= boundaries[month] {
		sign = (sign + 1) % 12
	}
	return sign
}

// MonthDay encodes a (month, day) pair into the month*100+day integer
// used by AttrBirthDayMonth questions.
func MonthDay(month, day int) int { return month*100 + day }

// Genders lists the gender options used by the catalog, matching the
// paper's 2013-era survey design.
var Genders = []string{"Female", "Male"}

// SmokingOptions lists the smoking-habit choices of the health survey.
var SmokingOptions = []string{"Never smoked", "Former smoker", "Occasional smoker", "Daily smoker"}

// YesNo lists the options of the awareness survey's questions.
var YesNo = []string{"Yes", "No"}

// Survey IDs in the catalog.
const (
	AstrologyID = "astrology"
	MatchmakeID = "matchmaking"
	CoverageID  = "mobile-coverage"
	HealthID    = "health"
	AwarenessID = "awareness"
	LecturerID  = "lecturer-ratings"
)

// Astrology returns the paper's first profiling survey: opinions about
// astrology services that, along the way, harvest star sign and
// day/month of birth. The zodiac cross-check doubles as the redundancy
// filter for random responders.
func Astrology() *Survey {
	return &Survey{
		ID:          AstrologyID,
		Title:       "Your opinion on astrology services",
		Description: "A short market-research survey about online astrology services.",
		RewardCents: 4,
		Questions: []Question{
			{ID: "astro-useful", Text: "How useful do you find astrology services?",
				Kind: Rating, ScaleMin: 1, ScaleMax: 5, Attribute: AttrOpinion},
			{ID: "astro-trust", Text: "How much do you trust online horoscopes?",
				Kind: Rating, ScaleMin: 1, ScaleMax: 5, Attribute: AttrOpinion},
			{ID: "star-sign", Text: "What is your star sign?",
				Kind: MultipleChoice, Options: ZodiacSigns, Attribute: AttrStarSign},
			{ID: "birth-md", Text: "To personalise your horoscope: on what day and month were you born? (MMDD)",
				Kind: Numeric, ScaleMin: 101, ScaleMax: 1231, Attribute: AttrBirthDayMonth},
			{ID: "astro-useful-2", Text: "Overall, how valuable are astrology services to you?",
				Kind: Rating, ScaleMin: 1, ScaleMax: 5, Attribute: AttrOpinion},
		},
		Consistency: []ConsistencyPair{
			{QuestionA: "star-sign", QuestionB: "birth-md", Rule: RuleZodiac},
			{QuestionA: "astro-useful", QuestionB: "astro-useful-2", Tolerance: 1},
		},
	}
}

// Matchmaking returns the paper's second profiling survey: market
// research on online match-making that harvests gender and year of birth.
// The age↔birth-year check is the redundancy filter.
func Matchmaking() *Survey {
	return &Survey{
		ID:          MatchmakeID,
		Title:       "Online match-making services",
		Description: "Market research about online dating and match-making platforms.",
		RewardCents: 4,
		Questions: []Question{
			{ID: "match-used", Text: "How often have you used online match-making services?",
				Kind: Rating, ScaleMin: 1, ScaleMax: 5, Attribute: AttrOpinion},
			{ID: "gender", Text: "What is your gender?",
				Kind: MultipleChoice, Options: Genders, Attribute: AttrGender},
			{ID: "birth-year", Text: "In what year were you born?",
				Kind: Numeric, ScaleMin: 1920, ScaleMax: 1995, Attribute: AttrBirthYear},
			{ID: "age", Text: "What is your age?",
				Kind: Numeric, ScaleMin: 18, ScaleMax: 93, Attribute: AttrAge},
			{ID: "match-quality", Text: "How satisfied are you with the matches such services propose?",
				Kind: Rating, ScaleMin: 1, ScaleMax: 5, Attribute: AttrOpinion},
		},
		Consistency: []ConsistencyPair{
			{QuestionA: "age", QuestionB: "birth-year", Rule: RuleAgeYear},
		},
	}
}

// Coverage returns the paper's third profiling survey: mobile-phone
// coverage quality, harvesting ZIP code (asked twice as the redundancy
// filter).
func Coverage() *Survey {
	return &Survey{
		ID:          CoverageID,
		Title:       "Mobile phone coverage in your area",
		Description: "Help us map mobile network quality across the country.",
		RewardCents: 4,
		Questions: []Question{
			{ID: "cov-quality", Text: "How would you rate mobile coverage at home?",
				Kind: Rating, ScaleMin: 1, ScaleMax: 5, Attribute: AttrOpinion},
			{ID: "zip", Text: "What is your ZIP code?",
				Kind: Numeric, ScaleMin: 1, ScaleMax: 99999, Attribute: AttrZIP},
			{ID: "cov-drops", Text: "How often do your calls drop?",
				Kind: Rating, ScaleMin: 1, ScaleMax: 5, Attribute: AttrOpinion},
			{ID: "zip-confirm", Text: "Please confirm the ZIP code where you spend most of your time.",
				Kind: Numeric, ScaleMin: 1, ScaleMax: 99999, Attribute: AttrZIP},
		},
		Consistency: []ConsistencyPair{
			{QuestionA: "zip", QuestionB: "zip-confirm"},
		},
	}
}

// Health returns the paper's fourth, nominally anonymous survey about
// smoking habits and coughing frequency — the sensitive attributes whose
// linkage constitutes the privacy breach.
func Health() *Survey {
	return &Survey{
		ID:          HealthID,
		Title:       "Anonymous lifestyle and respiratory health check",
		Description: "Tell us anonymously about your smoking habits and coughing frequency.",
		RewardCents: 4,
		Questions: []Question{
			{ID: "smoking", Text: "Which best describes your smoking habits?",
				Kind: MultipleChoice, Options: SmokingOptions, Attribute: AttrSmoking, Sensitive: true},
			{ID: "cough-days", Text: "On how many days in a typical week do you have coughing episodes?",
				Kind: Numeric, ScaleMin: 0, ScaleMax: 7, Attribute: AttrCough, Sensitive: true},
			{ID: "cough-days-2", Text: "Out of the last 7 days, on how many did you cough repeatedly?",
				Kind: Numeric, ScaleMin: 0, ScaleMax: 7, Attribute: AttrCough, Sensitive: true},
		},
		Consistency: []ConsistencyPair{
			{QuestionA: "cough-days", QuestionB: "cough-days-2", Tolerance: 1},
		},
	}
}

// Awareness returns the paper's follow-up survey asking workers whether
// they knew they could be de-anonymized and whether they would
// participate if profiled.
func Awareness() *Survey {
	return &Survey{
		ID:          AwarenessID,
		Title:       "Awareness of profiling on crowdsourcing platforms",
		Description: "Two quick questions about requester profiling.",
		RewardCents: 2,
		Questions: []Question{
			{ID: "aware", Text: "Did you know that requesters can link your answers across surveys and profile you?",
				Kind: MultipleChoice, Options: YesNo, Attribute: AttrAwareness},
			{ID: "participate", Text: "Would you participate in surveys if you knew you were being profiled?",
				Kind: MultipleChoice, Options: YesNo, Attribute: AttrParticipation},
		},
	}
}

// Lecturers returns the Loki trial survey: rate each of the given
// lecturers on a 1..5 scale. Question IDs are "lecturer-<i>".
func Lecturers(names []string) *Survey {
	qs := make([]Question, len(names))
	for i, name := range names {
		qs[i] = Question{
			ID:        LecturerQuestionID(i),
			Text:      fmt.Sprintf("Rate the teaching of %s.", name),
			Kind:      Rating,
			ScaleMin:  1,
			ScaleMax:  5,
			Attribute: AttrOpinion,
		}
	}
	return &Survey{
		ID:          LecturerID,
		Title:       "Rate your lecturers",
		Description: "Anonymously rate the lecturers who taught you this term.",
		RewardCents: 0,
		Questions:   qs,
	}
}

// LecturerQuestionID returns the question ID for lecturer index i.
func LecturerQuestionID(i int) string { return fmt.Sprintf("lecturer-%02d", i) }

// ProfilingSurveys returns the three §2 profiling surveys in posting
// order.
func ProfilingSurveys() []*Survey {
	return []*Survey{Astrology(), Matchmaking(), Coverage()}
}
