package survey

import (
	"fmt"
	"sort"
)

// This file implements linkage auditing: the platform-level defence the
// paper's §2 implies. A single survey asking for a ZIP code looks
// harmless; the privacy loss appears when the same requester's surveys
// *jointly* harvest enough attributes to form a quasi-identifier. The
// auditor inspects a requester's portfolio of surveys and reports how
// close their union comes to the {date of birth, gender, ZIP}
// identifier, and whether sensitive answers would become linkable to it.

// QuasiIDAttributes are the attributes that jointly form the §2
// quasi-identifier. StarSign is included because it reveals ~1/12 of the
// day/month attribute by itself.
var QuasiIDAttributes = []Attribute{AttrBirthDayMonth, AttrBirthYear, AttrGender, AttrZIP}

// partialIdentifiers map attributes that leak a fraction of another
// attribute: star sign narrows day/month twelvefold; age reveals birth
// year up to ±1.
var partialIdentifiers = map[Attribute]Attribute{
	AttrStarSign: AttrBirthDayMonth,
	AttrAge:      AttrBirthYear,
}

// AuditSeverity grades an audit finding.
type AuditSeverity int

const (
	// Info findings note identifier fragments being collected.
	Info AuditSeverity = iota
	// Warning findings indicate one attribute away from a full
	// quasi-identifier, or sensitive data alongside identifier
	// fragments.
	Warning
	// Critical findings indicate the portfolio jointly harvests a full
	// quasi-identifier (with linkable worker IDs this de-anonymizes).
	Critical
)

// String names the severity.
func (s AuditSeverity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("AuditSeverity(%d)", int(s))
	}
}

// AuditFinding is one issue the auditor raises.
type AuditFinding struct {
	Severity AuditSeverity `json:"severity"`
	Message  string        `json:"message"`
}

// AuditReport summarises the linkage risk of a survey portfolio.
type AuditReport struct {
	// Harvested lists every identifying attribute the portfolio
	// collects (including via partial identifiers), sorted.
	Harvested []Attribute `json:"harvested,omitempty"`
	// MissingForQuasiID lists the quasi-identifier attributes the
	// portfolio does not yet collect.
	MissingForQuasiID []Attribute `json:"missing_for_quasi_id,omitempty"`
	// CompletesQuasiID is true when the portfolio jointly harvests the
	// full quasi-identifier.
	CompletesQuasiID bool `json:"completes_quasi_id"`
	// CollectsSensitive is true when any survey collects answers marked
	// sensitive.
	CollectsSensitive bool           `json:"collects_sensitive"`
	Findings          []AuditFinding `json:"findings,omitempty"`
}

// MaxSeverity returns the highest severity among the findings (Info for
// an empty report).
func (r *AuditReport) MaxSeverity() AuditSeverity {
	max := Info
	for _, f := range r.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// AuditPortfolio inspects all surveys posted by one requester and
// reports their joint linkage risk. Surveys are analysed as a set: the
// §2 attack needs nothing more than their union of attributes plus
// stable worker IDs.
func AuditPortfolio(surveys []*Survey) *AuditReport {
	report := &AuditReport{}
	harvested := map[Attribute]bool{}
	bySurvey := map[Attribute][]string{}
	for _, s := range surveys {
		for _, attr := range s.HarvestedAttributes() {
			effective := attr
			if target, ok := partialIdentifiers[attr]; ok {
				effective = target
			}
			switch effective {
			case AttrBirthDayMonth, AttrBirthYear, AttrGender, AttrZIP:
				harvested[effective] = true
				bySurvey[effective] = append(bySurvey[effective], s.ID)
			}
		}
		for i := range s.Questions {
			if s.Questions[i].Sensitive {
				report.CollectsSensitive = true
			}
		}
	}

	for _, attr := range QuasiIDAttributes {
		if harvested[attr] {
			report.Harvested = append(report.Harvested, attr)
		} else {
			report.MissingForQuasiID = append(report.MissingForQuasiID, attr)
		}
	}
	sort.Slice(report.Harvested, func(i, j int) bool { return report.Harvested[i] < report.Harvested[j] })
	sort.Slice(report.MissingForQuasiID, func(i, j int) bool {
		return report.MissingForQuasiID[i] < report.MissingForQuasiID[j]
	})
	report.CompletesQuasiID = len(report.MissingForQuasiID) == 0

	for _, attr := range report.Harvested {
		ids := dedupe(bySurvey[attr])
		report.Findings = append(report.Findings, AuditFinding{
			Severity: Info,
			Message:  fmt.Sprintf("portfolio collects %s (surveys: %v)", attr, ids),
		})
	}
	switch {
	case report.CompletesQuasiID:
		msg := "portfolio jointly harvests the full {date of birth, gender, ZIP} quasi-identifier; " +
			"with stable worker IDs respondents are re-identifiable against public records"
		if report.CollectsSensitive {
			msg += ", and sensitive answers would be linkable to recovered identities"
		}
		report.Findings = append(report.Findings, AuditFinding{Severity: Critical, Message: msg})
	case len(report.MissingForQuasiID) == 1:
		report.Findings = append(report.Findings, AuditFinding{
			Severity: Warning,
			Message: fmt.Sprintf("portfolio is one attribute (%s) away from a full quasi-identifier",
				report.MissingForQuasiID[0]),
		})
	}
	if report.CollectsSensitive && len(report.Harvested) > 0 && !report.CompletesQuasiID {
		report.Findings = append(report.Findings, AuditFinding{
			Severity: Warning,
			Message:  "portfolio collects sensitive answers alongside identifier fragments",
		})
	}
	return report
}

func dedupe(ids []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
