// Package survey defines the survey domain model shared by every other
// module: surveys, questions, answers, responses, validation, and the
// redundancy (consistency) checks the paper uses to filter out random
// responders.
//
// A Question is typed by kind. Ratings questions (the paper's focus) take
// a numeric answer on a bounded scale; multiple-choice questions take an
// option index; numeric questions take a bounded number (used for ZIP
// codes, birth years and the like); free-text questions are supported by
// the model but explicitly excluded from obfuscation, as in the paper.
//
// Questions additionally carry an Attribute label stating which personal
// attribute the answer reveals (birth day/month, gender, ZIP, ...). The
// attack module uses these labels to assemble quasi-identifiers exactly
// the way the paper's authors did by reading their own survey answers.
package survey

import (
	"errors"
	"fmt"
	"math"
)

// QuestionKind enumerates the supported question types.
type QuestionKind int

const (
	// Rating is a bounded numeric scale question (e.g. 1..5 stars).
	Rating QuestionKind = iota
	// MultipleChoice is a single-select categorical question.
	MultipleChoice
	// Numeric is a bounded integer question (year of birth, ZIP, ...).
	Numeric
	// FreeText is an unconstrained text question. Free text cannot be
	// obfuscated by noise addition and is excluded from Loki's privacy
	// mechanism, as stated in the paper.
	FreeText
)

// String returns the kind's lowercase name.
func (k QuestionKind) String() string {
	switch k {
	case Rating:
		return "rating"
	case MultipleChoice:
		return "multiple-choice"
	case Numeric:
		return "numeric"
	case FreeText:
		return "free-text"
	default:
		return fmt.Sprintf("QuestionKind(%d)", int(k))
	}
}

// Attribute labels what personal information an answer reveals. Most
// questions reveal nothing (AttrNone); the paper's profiling surveys
// harvest the attributes below.
type Attribute string

// Attributes harvested by the paper's surveys.
const (
	AttrNone          Attribute = ""
	AttrStarSign      Attribute = "star-sign"
	AttrBirthDayMonth Attribute = "birth-day-month" // day+month encoded as month*100+day
	AttrBirthYear     Attribute = "birth-year"
	AttrGender        Attribute = "gender"
	AttrZIP           Attribute = "zip"
	AttrSmoking       Attribute = "smoking"
	AttrCough         Attribute = "cough"
	AttrAge           Attribute = "age"
	AttrAwareness     Attribute = "awareness"
	AttrParticipation Attribute = "participation"
	AttrOpinion       Attribute = "opinion" // non-identifying filler
)

// Question is a single survey question.
type Question struct {
	// ID is unique within a survey.
	ID string `json:"id"`
	// Text is the question prompt.
	Text string `json:"text"`
	// Kind selects the answer type.
	Kind QuestionKind `json:"kind"`
	// ScaleMin and ScaleMax bound Rating and Numeric answers
	// (inclusive).
	ScaleMin float64 `json:"scale_min,omitempty"`
	ScaleMax float64 `json:"scale_max,omitempty"`
	// Options are the choices of a MultipleChoice question.
	Options []string `json:"options,omitempty"`
	// Attribute labels the personal attribute the answer reveals.
	Attribute Attribute `json:"attribute,omitempty"`
	// Sensitive marks answers whose disclosure the paper treats as a
	// privacy breach (health attributes).
	Sensitive bool `json:"sensitive,omitempty"`
}

// Validate reports whether the question definition itself is coherent.
func (q *Question) Validate() error {
	if q.ID == "" {
		return errors.New("survey: question has empty ID")
	}
	switch q.Kind {
	case Rating, Numeric:
		if !(q.ScaleMax > q.ScaleMin) {
			return fmt.Errorf("survey: question %q has invalid scale [%g, %g]", q.ID, q.ScaleMin, q.ScaleMax)
		}
	case MultipleChoice:
		if len(q.Options) < 2 {
			return fmt.Errorf("survey: question %q has %d options, need >= 2", q.ID, len(q.Options))
		}
	case FreeText:
		// no constraints
	default:
		return fmt.Errorf("survey: question %q has unknown kind %d", q.ID, int(q.Kind))
	}
	return nil
}

// DomainSize returns the number of possible answers for countable-domain
// questions (the paper's obfuscation applies only to these). It returns 0
// for free-text questions.
func (q *Question) DomainSize() int {
	switch q.Kind {
	case Rating, Numeric:
		return int(q.ScaleMax-q.ScaleMin) + 1
	case MultipleChoice:
		return len(q.Options)
	default:
		return 0
	}
}

// Sensitivity returns the maximum change of the answer value between any
// two possible true answers — the sensitivity used to calibrate noise.
// For multiple-choice questions the answer is an index and sensitivity is
// len(Options)-1; randomized response does not use it but the DP ledger
// records it for reporting.
func (q *Question) Sensitivity() float64 {
	switch q.Kind {
	case Rating, Numeric:
		return q.ScaleMax - q.ScaleMin
	case MultipleChoice:
		return float64(len(q.Options) - 1)
	default:
		return 0
	}
}

// ConsistencyRule selects how a ConsistencyPair is evaluated.
type ConsistencyRule string

// Consistency rules. RuleEqual demands equal answers (within Tolerance
// for numeric kinds). RuleZodiac checks that a star-sign choice (indices
// follow ZodiacSigns) matches a birth day/month encoded as month*100+day.
// RuleAgeYear checks that a claimed age matches a claimed birth year
// relative to ReferenceYear, within Tolerance+1 (the birthday may not
// have passed yet). The derived-fact rules are how the paper's surveys
// embed redundancy without visibly repeating a question.
const (
	RuleEqual   ConsistencyRule = ""
	RuleZodiac  ConsistencyRule = "zodiac"
	RuleAgeYear ConsistencyRule = "age-year"
)

// ReferenceYear anchors age↔birth-year consistency checks. The paper's
// experiments ran in 2013.
const ReferenceYear = 2013

// ConsistencyPair names two questions that ask for the same underlying
// fact in different words. The paper: "We designed our surveys with
// sufficient redundancy to help us identify and filter out users who gave
// random responses." Tolerance is the maximum allowed absolute difference
// for Rating/Numeric pairs (0 for exact-match kinds).
type ConsistencyPair struct {
	QuestionA string          `json:"question_a"`
	QuestionB string          `json:"question_b"`
	Tolerance float64         `json:"tolerance,omitempty"`
	Rule      ConsistencyRule `json:"rule,omitempty"`
}

// Survey is an ordered questionnaire posted to a platform.
type Survey struct {
	// ID is unique across the platform.
	ID string `json:"id"`
	// Title and Description are shown to workers.
	Title       string `json:"title"`
	Description string `json:"description,omitempty"`
	// Questions in presentation order.
	Questions []Question `json:"questions"`
	// Consistency lists the redundancy checks used to filter random
	// responders.
	Consistency []ConsistencyPair `json:"consistency,omitempty"`
	// RewardCents is the payment per completed response, in US cents.
	RewardCents int `json:"reward_cents"`
}

// Validate checks the whole survey definition: question validity, unique
// IDs, and well-formed consistency pairs.
func (s *Survey) Validate() error {
	if s.ID == "" {
		return errors.New("survey: empty survey ID")
	}
	if len(s.Questions) == 0 {
		return fmt.Errorf("survey: %q has no questions", s.ID)
	}
	if s.RewardCents < 0 {
		return fmt.Errorf("survey: %q has negative reward %d", s.ID, s.RewardCents)
	}
	seen := make(map[string]bool, len(s.Questions))
	for i := range s.Questions {
		q := &s.Questions[i]
		if err := q.Validate(); err != nil {
			return err
		}
		if seen[q.ID] {
			return fmt.Errorf("survey: %q has duplicate question ID %q", s.ID, q.ID)
		}
		seen[q.ID] = true
	}
	for _, cp := range s.Consistency {
		qa, qb := s.Question(cp.QuestionA), s.Question(cp.QuestionB)
		if qa == nil || qb == nil {
			return fmt.Errorf("survey: %q consistency pair references unknown question (%q, %q)",
				s.ID, cp.QuestionA, cp.QuestionB)
		}
		if cp.Tolerance < 0 {
			return fmt.Errorf("survey: %q consistency pair (%q, %q) has negative tolerance",
				s.ID, cp.QuestionA, cp.QuestionB)
		}
		switch cp.Rule {
		case RuleEqual:
			if qa.Kind != qb.Kind {
				return fmt.Errorf("survey: %q consistency pair (%q, %q) mixes kinds %v and %v",
					s.ID, cp.QuestionA, cp.QuestionB, qa.Kind, qb.Kind)
			}
		case RuleZodiac:
			if qa.Kind != MultipleChoice || len(qa.Options) != 12 {
				return fmt.Errorf("survey: %q zodiac check needs a 12-option choice question, got %q", s.ID, qa.ID)
			}
			if qb.Kind != Numeric {
				return fmt.Errorf("survey: %q zodiac check needs a numeric day/month question, got %q", s.ID, qb.ID)
			}
		case RuleAgeYear:
			if qa.Kind != Numeric || qb.Kind != Numeric {
				return fmt.Errorf("survey: %q age-year check needs numeric questions", s.ID)
			}
		default:
			return fmt.Errorf("survey: %q has unknown consistency rule %q", s.ID, cp.Rule)
		}
	}
	return nil
}

// Clone returns a deep copy of the survey: mutating the copy — including
// its questions, their options, and its consistency pairs — never
// affects the original. Stores hand out clones so published definitions
// stay immutable.
func (s *Survey) Clone() *Survey {
	cp := *s
	cp.Questions = make([]Question, len(s.Questions))
	copy(cp.Questions, s.Questions)
	for i := range cp.Questions {
		cp.Questions[i].Options = append([]string(nil), s.Questions[i].Options...)
	}
	cp.Consistency = append([]ConsistencyPair(nil), s.Consistency...)
	return &cp
}

// Question returns the question with the given ID, or nil.
func (s *Survey) Question(id string) *Question {
	for i := range s.Questions {
		if s.Questions[i].ID == id {
			return &s.Questions[i]
		}
	}
	return nil
}

// QuestionsByAttribute returns the questions harvesting the given
// attribute, in order.
func (s *Survey) QuestionsByAttribute(attr Attribute) []*Question {
	var out []*Question
	for i := range s.Questions {
		if s.Questions[i].Attribute == attr {
			out = append(out, &s.Questions[i])
		}
	}
	return out
}

// HarvestedAttributes returns the set of non-empty attributes the survey
// collects, in question order without duplicates.
func (s *Survey) HarvestedAttributes() []Attribute {
	var out []Attribute
	seen := make(map[Attribute]bool)
	for i := range s.Questions {
		a := s.Questions[i].Attribute
		if a != AttrNone && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Answers and responses

// Answer is a single answer to a question. Exactly one value field is
// meaningful, selected by Kind. Rating answers are float64 so that
// obfuscated (noisy, real-valued) ratings are representable, matching the
// paper's Fig. 1(c) where noisy ratings like 3.86 are reported.
type Answer struct {
	QuestionID string       `json:"question_id"`
	Kind       QuestionKind `json:"kind"`
	// Rating holds Rating and Numeric values.
	Rating float64 `json:"rating,omitempty"`
	// Choice holds the option index of a MultipleChoice answer.
	Choice int `json:"choice,omitempty"`
	// Text holds a FreeText answer.
	Text string `json:"text,omitempty"`
}

// Value returns the numeric value of a countable-domain answer (rating,
// numeric, or choice index). It returns an error for free-text answers.
func (a *Answer) Value() (float64, error) {
	switch a.Kind {
	case Rating, Numeric:
		return a.Rating, nil
	case MultipleChoice:
		return float64(a.Choice), nil
	default:
		return 0, fmt.Errorf("survey: answer to %q has no numeric value (kind %v)", a.QuestionID, a.Kind)
	}
}

// RatingAnswer constructs a rating or numeric answer.
func RatingAnswer(questionID string, value float64) Answer {
	return Answer{QuestionID: questionID, Kind: Rating, Rating: value}
}

// NumericAnswer constructs a numeric answer.
func NumericAnswer(questionID string, value float64) Answer {
	return Answer{QuestionID: questionID, Kind: Numeric, Rating: value}
}

// ChoiceAnswer constructs a multiple-choice answer.
func ChoiceAnswer(questionID string, choice int) Answer {
	return Answer{QuestionID: questionID, Kind: MultipleChoice, Choice: choice}
}

// TextAnswer constructs a free-text answer.
func TextAnswer(questionID, text string) Answer {
	return Answer{QuestionID: questionID, Kind: FreeText, Text: text}
}

// ValidateAnswer checks an answer against its question definition.
// Obfuscated rating answers may legitimately fall outside the scale, so
// validation of uploaded (noisy) responses passes allowOutOfScale=true;
// raw (pre-obfuscation) answers are validated strictly.
func ValidateAnswer(q *Question, a *Answer, allowOutOfScale bool) error {
	if q == nil {
		return fmt.Errorf("survey: answer references unknown question %q", a.QuestionID)
	}
	if a.Kind != q.Kind {
		// Numeric and Rating share a representation; everything else
		// must match exactly.
		interchangeable := (a.Kind == Rating && q.Kind == Numeric) || (a.Kind == Numeric && q.Kind == Rating)
		if !interchangeable {
			return fmt.Errorf("survey: answer to %q has kind %v, question is %v", q.ID, a.Kind, q.Kind)
		}
	}
	switch q.Kind {
	case Rating, Numeric:
		if math.IsNaN(a.Rating) || math.IsInf(a.Rating, 0) {
			return fmt.Errorf("survey: answer to %q is not finite", q.ID)
		}
		if !allowOutOfScale && (a.Rating < q.ScaleMin || a.Rating > q.ScaleMax) {
			return fmt.Errorf("survey: answer %g to %q outside scale [%g, %g]",
				a.Rating, q.ID, q.ScaleMin, q.ScaleMax)
		}
	case MultipleChoice:
		if a.Choice < 0 || a.Choice >= len(q.Options) {
			return fmt.Errorf("survey: answer choice %d to %q outside [0, %d)", a.Choice, q.ID, len(q.Options))
		}
	case FreeText:
		// any text accepted
	}
	return nil
}

// Response is one worker's completed survey.
type Response struct {
	SurveyID string `json:"survey_id"`
	// WorkerID is the platform-assigned identifier. Under AMT's policy it
	// is stable across surveys — the linkage enabler the paper exposes.
	WorkerID string   `json:"worker_id"`
	Answers  []Answer `json:"answers"`
	// PrivacyLevel is the Loki privacy level name chosen by the user
	// ("none", "low", "medium", "high"); empty on legacy platforms.
	PrivacyLevel string `json:"privacy_level,omitempty"`
	// Obfuscated reports whether Answers have already been perturbed at
	// source.
	Obfuscated bool `json:"obfuscated,omitempty"`
	// Day is the simulated day the response was submitted.
	Day int `json:"day"`
}

// Answer returns the response's answer to the given question ID, or nil.
func (r *Response) Answer(questionID string) *Answer {
	for i := range r.Answers {
		if r.Answers[i].QuestionID == questionID {
			return &r.Answers[i]
		}
	}
	return nil
}

// Validate checks the response against the survey definition: every
// question answered exactly once, every answer valid. Obfuscated
// responses may carry out-of-scale ratings.
func (r *Response) Validate(s *Survey) error {
	if r.SurveyID != s.ID {
		return fmt.Errorf("survey: response for %q validated against %q", r.SurveyID, s.ID)
	}
	if r.WorkerID == "" {
		return errors.New("survey: response has empty worker ID")
	}
	if len(r.Answers) != len(s.Questions) {
		return fmt.Errorf("survey: response to %q has %d answers, survey has %d questions",
			s.ID, len(r.Answers), len(s.Questions))
	}
	seen := make(map[string]bool, len(r.Answers))
	for i := range r.Answers {
		a := &r.Answers[i]
		if seen[a.QuestionID] {
			return fmt.Errorf("survey: response to %q answers %q twice", s.ID, a.QuestionID)
		}
		seen[a.QuestionID] = true
		if err := ValidateAnswer(s.Question(a.QuestionID), a, r.Obfuscated); err != nil {
			return err
		}
	}
	return nil
}

// Consistent reports whether the response passes all of the survey's
// redundancy checks. Obfuscated responses widen each tolerance by slack,
// since noise legitimately perturbs both halves of a pair.
func (r *Response) Consistent(s *Survey, slack float64) bool {
	for _, cp := range s.Consistency {
		aa, ab := r.Answer(cp.QuestionA), r.Answer(cp.QuestionB)
		if aa == nil || ab == nil {
			return false
		}
		switch cp.Rule {
		case RuleZodiac:
			// aa is the star-sign choice, ab the month*100+day number.
			if aa.Choice != ZodiacOf(int(ab.Rating)) {
				return false
			}
		case RuleAgeYear:
			// aa is the claimed age, ab the claimed birth year.
			age := aa.Rating
			impliedAge := float64(ReferenceYear) - ab.Rating
			if math.Abs(age-impliedAge) > cp.Tolerance+1+slack {
				return false
			}
		default: // RuleEqual
			qa := s.Question(cp.QuestionA)
			switch qa.Kind {
			case Rating, Numeric:
				if math.Abs(aa.Rating-ab.Rating) > cp.Tolerance+slack {
					return false
				}
			case MultipleChoice:
				if aa.Choice != ab.Choice {
					return false
				}
			case FreeText:
				if aa.Text != ab.Text {
					return false
				}
			}
		}
	}
	return true
}
