package survey

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func ratingQ(id string) Question {
	return Question{ID: id, Text: id, Kind: Rating, ScaleMin: 1, ScaleMax: 5}
}

func TestQuestionValidate(t *testing.T) {
	cases := []struct {
		name string
		q    Question
		ok   bool
	}{
		{"rating", ratingQ("q"), true},
		{"empty id", Question{Kind: Rating, ScaleMin: 1, ScaleMax: 5}, false},
		{"inverted scale", Question{ID: "q", Kind: Rating, ScaleMin: 5, ScaleMax: 1}, false},
		{"flat scale", Question{ID: "q", Kind: Numeric, ScaleMin: 2, ScaleMax: 2}, false},
		{"mc ok", Question{ID: "q", Kind: MultipleChoice, Options: []string{"a", "b"}}, true},
		{"mc one option", Question{ID: "q", Kind: MultipleChoice, Options: []string{"a"}}, false},
		{"free text", Question{ID: "q", Kind: FreeText}, true},
		{"unknown kind", Question{ID: "q", Kind: QuestionKind(99)}, false},
	}
	for _, c := range cases {
		if err := c.q.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestQuestionDomainAndSensitivity(t *testing.T) {
	q := ratingQ("q")
	if q.DomainSize() != 5 || q.Sensitivity() != 4 {
		t.Errorf("rating: domain %d sensitivity %g", q.DomainSize(), q.Sensitivity())
	}
	mc := Question{ID: "m", Kind: MultipleChoice, Options: []string{"a", "b", "c"}}
	if mc.DomainSize() != 3 || mc.Sensitivity() != 2 {
		t.Errorf("mc: domain %d sensitivity %g", mc.DomainSize(), mc.Sensitivity())
	}
	ft := Question{ID: "f", Kind: FreeText}
	if ft.DomainSize() != 0 || ft.Sensitivity() != 0 {
		t.Errorf("free text: domain %d sensitivity %g", ft.DomainSize(), ft.Sensitivity())
	}
}

func TestQuestionKindString(t *testing.T) {
	for k, want := range map[QuestionKind]string{
		Rating: "rating", MultipleChoice: "multiple-choice",
		Numeric: "numeric", FreeText: "free-text",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if !strings.Contains(QuestionKind(42).String(), "42") {
		t.Error("unknown kind string lacks value")
	}
}

func TestZodiacOf(t *testing.T) {
	cases := []struct {
		md   int
		want int // index into ZodiacSigns
	}{
		{321, 0},  // 21 Mar → Aries
		{419, 0},  // 19 Apr → Aries
		{420, 1},  // 20 Apr → Taurus
		{101, 9},  // 1 Jan → Capricorn
		{119, 9},  // 19 Jan → Capricorn
		{120, 10}, // 20 Jan → Aquarius
		{219, 11}, // 19 Feb → Pisces
		{320, 11}, // 20 Mar → Pisces
		{1221, 8}, // 21 Dec → Sagittarius
		{1222, 9}, // 22 Dec → Capricorn
	}
	for _, c := range cases {
		if got := ZodiacOf(c.md); got != c.want {
			t.Errorf("ZodiacOf(%d) = %d (%s), want %d (%s)",
				c.md, got, ZodiacSigns[got], c.want, ZodiacSigns[c.want])
		}
	}
	for _, bad := range []int{0, 100, 1301, 132, 532, -5, 99999} {
		if got := ZodiacOf(bad); got != -1 {
			t.Errorf("ZodiacOf(%d) = %d, want -1", bad, got)
		}
	}
}

func TestMonthDay(t *testing.T) {
	if MonthDay(12, 31) != 1231 || MonthDay(1, 1) != 101 {
		t.Error("MonthDay encoding broken")
	}
}

func TestSurveyValidate(t *testing.T) {
	ok := &Survey{ID: "s", Title: "t", RewardCents: 5, Questions: []Question{ratingQ("a"), ratingQ("b")}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid survey rejected: %v", err)
	}
	cases := []struct {
		name string
		s    *Survey
	}{
		{"empty id", &Survey{Questions: []Question{ratingQ("a")}}},
		{"no questions", &Survey{ID: "s"}},
		{"negative reward", &Survey{ID: "s", RewardCents: -1, Questions: []Question{ratingQ("a")}}},
		{"dup question", &Survey{ID: "s", Questions: []Question{ratingQ("a"), ratingQ("a")}}},
		{"bad question", &Survey{ID: "s", Questions: []Question{{ID: "x", Kind: Rating}}}},
		{"consistency unknown ref", &Survey{ID: "s", Questions: []Question{ratingQ("a")},
			Consistency: []ConsistencyPair{{QuestionA: "a", QuestionB: "zz"}}}},
		{"consistency kind mix", &Survey{ID: "s",
			Questions:   []Question{ratingQ("a"), {ID: "m", Kind: MultipleChoice, Options: []string{"x", "y"}}},
			Consistency: []ConsistencyPair{{QuestionA: "a", QuestionB: "m"}}}},
		{"negative tolerance", &Survey{ID: "s", Questions: []Question{ratingQ("a"), ratingQ("b")},
			Consistency: []ConsistencyPair{{QuestionA: "a", QuestionB: "b", Tolerance: -1}}}},
		{"zodiac wrong kinds", &Survey{ID: "s", Questions: []Question{ratingQ("a"), ratingQ("b")},
			Consistency: []ConsistencyPair{{QuestionA: "a", QuestionB: "b", Rule: RuleZodiac}}}},
		{"age-year wrong kinds", &Survey{ID: "s",
			Questions:   []Question{ratingQ("a"), {ID: "m", Kind: MultipleChoice, Options: []string{"x", "y"}}},
			Consistency: []ConsistencyPair{{QuestionA: "a", QuestionB: "m", Rule: RuleAgeYear}}}},
		{"unknown rule", &Survey{ID: "s", Questions: []Question{ratingQ("a"), ratingQ("b")},
			Consistency: []ConsistencyPair{{QuestionA: "a", QuestionB: "b", Rule: "bogus"}}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSurveyLookups(t *testing.T) {
	s := Astrology()
	if s.Question("star-sign") == nil {
		t.Fatal("star-sign missing")
	}
	if s.Question("nope") != nil {
		t.Fatal("phantom question found")
	}
	if got := len(s.QuestionsByAttribute(AttrOpinion)); got != 3 {
		t.Errorf("opinion questions = %d, want 3", got)
	}
	attrs := s.HarvestedAttributes()
	want := map[Attribute]bool{AttrOpinion: true, AttrStarSign: true, AttrBirthDayMonth: true}
	if len(attrs) != len(want) {
		t.Errorf("harvested = %v", attrs)
	}
	for _, a := range attrs {
		if !want[a] {
			t.Errorf("unexpected attribute %q", a)
		}
	}
}

func TestCatalogSurveysValid(t *testing.T) {
	surveys := []*Survey{
		Astrology(), Matchmaking(), Coverage(), Health(), Awareness(),
		Lecturers([]string{"A", "B", "C"}),
	}
	for _, s := range surveys {
		if err := s.Validate(); err != nil {
			t.Errorf("catalog survey %q invalid: %v", s.ID, err)
		}
	}
	if len(ProfilingSurveys()) != 3 {
		t.Error("profiling surveys != 3")
	}
	// The three profiling surveys jointly harvest the quasi-identifier.
	got := map[Attribute]bool{}
	for _, s := range ProfilingSurveys() {
		for _, a := range s.HarvestedAttributes() {
			got[a] = true
		}
	}
	for _, need := range []Attribute{AttrBirthDayMonth, AttrBirthYear, AttrGender, AttrZIP} {
		if !got[need] {
			t.Errorf("profiling surveys do not harvest %q", need)
		}
	}
	// The health survey marks its questions sensitive.
	for _, q := range Health().Questions {
		if !q.Sensitive {
			t.Errorf("health question %q not marked sensitive", q.ID)
		}
	}
}

func TestAnswerConstructorsAndValue(t *testing.T) {
	a := RatingAnswer("q", 3.5)
	if v, err := a.Value(); err != nil || v != 3.5 {
		t.Errorf("rating value = %g, %v", v, err)
	}
	n := NumericAnswer("q", 42)
	if v, err := n.Value(); err != nil || v != 42 {
		t.Errorf("numeric value = %g, %v", v, err)
	}
	c := ChoiceAnswer("q", 2)
	if v, err := c.Value(); err != nil || v != 2 {
		t.Errorf("choice value = %g, %v", v, err)
	}
	txt := TextAnswer("q", "hi")
	if _, err := txt.Value(); err == nil {
		t.Error("text Value() accepted")
	}
}

func TestValidateAnswer(t *testing.T) {
	q := ratingQ("q")
	good := RatingAnswer("q", 3)
	if err := ValidateAnswer(&q, &good, false); err != nil {
		t.Errorf("good answer rejected: %v", err)
	}
	if err := ValidateAnswer(nil, &good, false); err == nil {
		t.Error("nil question accepted")
	}
	out := RatingAnswer("q", 7.2)
	if err := ValidateAnswer(&q, &out, false); err == nil {
		t.Error("out-of-scale accepted strictly")
	}
	if err := ValidateAnswer(&q, &out, true); err != nil {
		t.Errorf("out-of-scale rejected leniently: %v", err)
	}
	nan := RatingAnswer("q", math.NaN())
	if err := ValidateAnswer(&q, &nan, true); err == nil {
		t.Error("NaN accepted")
	}
	inf := RatingAnswer("q", math.Inf(1))
	if err := ValidateAnswer(&q, &inf, true); err == nil {
		t.Error("Inf accepted")
	}
	// Rating answers satisfy Numeric questions and vice versa.
	nq := Question{ID: "q", Kind: Numeric, ScaleMin: 0, ScaleMax: 10}
	if err := ValidateAnswer(&nq, &good, false); err != nil {
		t.Errorf("rating answer rejected by numeric question: %v", err)
	}
	// But not multiple-choice.
	mc := Question{ID: "q", Kind: MultipleChoice, Options: []string{"a", "b"}}
	if err := ValidateAnswer(&mc, &good, false); err == nil {
		t.Error("rating answer accepted by choice question")
	}
	badChoice := ChoiceAnswer("q", 5)
	if err := ValidateAnswer(&mc, &badChoice, false); err == nil {
		t.Error("out-of-range choice accepted")
	}
	okChoice := ChoiceAnswer("q", 1)
	if err := ValidateAnswer(&mc, &okChoice, false); err != nil {
		t.Errorf("valid choice rejected: %v", err)
	}
}

func testSurvey() *Survey {
	return &Survey{
		ID: "s", Title: "t",
		Questions: []Question{
			ratingQ("r1"), ratingQ("r2"),
			{ID: "m", Kind: MultipleChoice, Options: []string{"x", "y"}},
		},
		Consistency: []ConsistencyPair{{QuestionA: "r1", QuestionB: "r2", Tolerance: 1}},
	}
}

func TestResponseValidate(t *testing.T) {
	s := testSurvey()
	good := Response{
		SurveyID: "s", WorkerID: "w",
		Answers: []Answer{RatingAnswer("r1", 3), RatingAnswer("r2", 3), ChoiceAnswer("m", 0)},
	}
	if err := good.Validate(s); err != nil {
		t.Fatalf("good response rejected: %v", err)
	}
	bad := good
	bad.SurveyID = "other"
	if err := bad.Validate(s); err == nil {
		t.Error("wrong survey accepted")
	}
	bad = good
	bad.WorkerID = ""
	if err := bad.Validate(s); err == nil {
		t.Error("empty worker accepted")
	}
	short := good
	short.Answers = good.Answers[:2]
	if err := short.Validate(s); err == nil {
		t.Error("missing answer accepted")
	}
	dup := good
	dup.Answers = []Answer{RatingAnswer("r1", 3), RatingAnswer("r1", 3), ChoiceAnswer("m", 0)}
	if err := dup.Validate(s); err == nil {
		t.Error("duplicate answer accepted")
	}
	// Obfuscated responses may be out of scale.
	noisy := good
	noisy.Obfuscated = true
	noisy.Answers = []Answer{RatingAnswer("r1", 8.3), RatingAnswer("r2", -0.4), ChoiceAnswer("m", 1)}
	if err := noisy.Validate(s); err != nil {
		t.Errorf("obfuscated out-of-scale rejected: %v", err)
	}
	raw := noisy
	raw.Obfuscated = false
	if err := raw.Validate(s); err == nil {
		t.Error("raw out-of-scale accepted")
	}
}

func TestResponseAnswerLookup(t *testing.T) {
	r := Response{Answers: []Answer{RatingAnswer("a", 1)}}
	if r.Answer("a") == nil || r.Answer("b") != nil {
		t.Error("Answer lookup broken")
	}
}

func TestConsistentEqualPair(t *testing.T) {
	s := testSurvey()
	resp := Response{SurveyID: "s", WorkerID: "w",
		Answers: []Answer{RatingAnswer("r1", 4), RatingAnswer("r2", 5), ChoiceAnswer("m", 0)}}
	if !resp.Consistent(s, 0) {
		t.Error("within-tolerance pair flagged inconsistent")
	}
	resp.Answers[1].Rating = 1
	if resp.Consistent(s, 0) {
		t.Error("3-point gap passed tolerance 1")
	}
	// Slack widens the tolerance for obfuscated responses.
	if !resp.Consistent(s, 5) {
		t.Error("slack not applied")
	}
	// A missing answer is inconsistent.
	missing := Response{SurveyID: "s", WorkerID: "w", Answers: []Answer{RatingAnswer("r1", 4)}}
	if missing.Consistent(s, 0) {
		t.Error("missing pair answer deemed consistent")
	}
}

func TestConsistentZodiac(t *testing.T) {
	s := Astrology()
	resp := Response{SurveyID: s.ID, WorkerID: "w", Answers: []Answer{
		RatingAnswer("astro-useful", 3),
		RatingAnswer("astro-trust", 3),
		ChoiceAnswer("star-sign", ZodiacOf(321)), // Aries
		NumericAnswer("birth-md", 321),
		RatingAnswer("astro-useful-2", 3),
	}}
	if !resp.Consistent(s, 0) {
		t.Error("matching zodiac flagged inconsistent")
	}
	resp.Answers[2].Choice = ZodiacOf(821) // Leo
	if resp.Consistent(s, 0) {
		t.Error("mismatched zodiac passed")
	}
}

func TestConsistentAgeYear(t *testing.T) {
	s := Matchmaking()
	mk := func(age, year float64) Response {
		return Response{SurveyID: s.ID, WorkerID: "w", Answers: []Answer{
			RatingAnswer("match-used", 2),
			ChoiceAnswer("gender", 0),
			NumericAnswer("birth-year", year),
			NumericAnswer("age", age),
			RatingAnswer("match-quality", 2),
		}}
	}
	// ReferenceYear is 2013: born 1980 → age 33 (or 32 pre-birthday).
	if r := mk(33, 1980); !r.Consistent(s, 0) {
		t.Error("exact age flagged")
	}
	if r := mk(32, 1980); !r.Consistent(s, 0) {
		t.Error("pre-birthday age flagged")
	}
	if r := mk(45, 1980); r.Consistent(s, 0) {
		t.Error("wildly wrong age passed")
	}
}

func TestConsistentChoiceAndText(t *testing.T) {
	s := &Survey{ID: "s", Questions: []Question{
		{ID: "c1", Kind: MultipleChoice, Options: []string{"a", "b"}},
		{ID: "c2", Kind: MultipleChoice, Options: []string{"a", "b"}},
		{ID: "t1", Kind: FreeText},
		{ID: "t2", Kind: FreeText},
	}, Consistency: []ConsistencyPair{
		{QuestionA: "c1", QuestionB: "c2"},
		{QuestionA: "t1", QuestionB: "t2"},
	}}
	resp := Response{SurveyID: "s", WorkerID: "w", Answers: []Answer{
		ChoiceAnswer("c1", 1), ChoiceAnswer("c2", 1),
		TextAnswer("t1", "x"), TextAnswer("t2", "x"),
	}}
	if !resp.Consistent(s, 0) {
		t.Error("matching choice/text flagged")
	}
	resp.Answers[1].Choice = 0
	if resp.Consistent(s, 0) {
		t.Error("choice mismatch passed")
	}
	resp.Answers[1].Choice = 1
	resp.Answers[3].Text = "y"
	if resp.Consistent(s, 0) {
		t.Error("text mismatch passed")
	}
}

func TestSurveyJSONRoundTrip(t *testing.T) {
	orig := Astrology()
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Survey
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped survey invalid: %v", err)
	}
	if back.ID != orig.ID || len(back.Questions) != len(orig.Questions) ||
		len(back.Consistency) != len(orig.Consistency) {
		t.Error("round trip lost structure")
	}
	if back.Questions[3].Attribute != AttrBirthDayMonth {
		t.Error("round trip lost attributes")
	}
}

func TestResponseJSONRoundTrip(t *testing.T) {
	orig := Response{
		SurveyID: "s", WorkerID: "w", PrivacyLevel: "medium", Obfuscated: true, Day: 3,
		Answers: []Answer{RatingAnswer("r", 3.86), ChoiceAnswer("m", 1), TextAnswer("t", "x")},
	}
	b, err := json.Marshal(&orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Response
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Answers[0].Rating != 3.86 || back.Answers[1].Choice != 1 || back.Answers[2].Text != "x" {
		t.Errorf("round trip mangled answers: %+v", back.Answers)
	}
	if back.PrivacyLevel != "medium" || !back.Obfuscated || back.Day != 3 {
		t.Error("round trip lost metadata")
	}
}

func TestLecturerQuestionIDs(t *testing.T) {
	s := Lecturers([]string{"A", "B"})
	if s.Questions[0].ID != LecturerQuestionID(0) || s.Questions[1].ID != LecturerQuestionID(1) {
		t.Error("lecturer question IDs mismatch")
	}
}
