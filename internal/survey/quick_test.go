package survey

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"loki/internal/rng"
)

// genSurvey builds a random but valid survey from a seed.
func genSurvey(seed uint64) *Survey {
	r := rng.New(seed)
	nq := 1 + r.Intn(8)
	s := &Survey{ID: "gen", Title: "generated", RewardCents: r.Intn(10)}
	for i := 0; i < nq; i++ {
		id := string(rune('a'+i)) + "q"
		switch r.Intn(3) {
		case 0:
			s.Questions = append(s.Questions, Question{
				ID: id, Text: "rate", Kind: Rating,
				ScaleMin: 1, ScaleMax: float64(2 + r.Intn(9)),
			})
		case 1:
			lo := float64(r.Intn(100))
			s.Questions = append(s.Questions, Question{
				ID: id, Text: "count", Kind: Numeric,
				ScaleMin: lo, ScaleMax: lo + float64(1+r.Intn(1000)),
			})
		default:
			opts := []string{"x", "y", "z", "w"}[:2+r.Intn(3)]
			s.Questions = append(s.Questions, Question{
				ID: id, Text: "choose", Kind: MultipleChoice, Options: opts,
			})
		}
	}
	return s
}

// genAnswers answers every question of s in-range.
func genAnswers(s *Survey, seed uint64) []Answer {
	r := rng.New(seed ^ 0xabcdef)
	out := make([]Answer, 0, len(s.Questions))
	for i := range s.Questions {
		q := &s.Questions[i]
		switch q.Kind {
		case Rating:
			out = append(out, RatingAnswer(q.ID, float64(r.IntRange(int(q.ScaleMin), int(q.ScaleMax)))))
		case Numeric:
			out = append(out, NumericAnswer(q.ID, float64(r.IntRange(int(q.ScaleMin), int(q.ScaleMax)))))
		case MultipleChoice:
			out = append(out, ChoiceAnswer(q.ID, r.Intn(len(q.Options))))
		default:
			out = append(out, TextAnswer(q.ID, "t"))
		}
	}
	return out
}

// TestQuickSurveyRoundTrip: every generated survey validates, survives a
// JSON round trip, and accepts its own generated answers.
func TestQuickSurveyRoundTrip(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := genSurvey(seed)
		if err := s.Validate(); err != nil {
			t.Logf("seed %d: generated survey invalid: %v", seed, err)
			return false
		}
		b, err := json.Marshal(s)
		if err != nil {
			return false
		}
		var back Survey
		if err := json.Unmarshal(b, &back); err != nil {
			return false
		}
		if err := back.Validate(); err != nil {
			return false
		}
		resp := Response{SurveyID: back.ID, WorkerID: "w", Answers: genAnswers(&back, seed)}
		return resp.Validate(&back) == nil
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickZodiacTotal: every valid calendar day maps to exactly one
// sign, and consecutive days map to the same or adjacent sign.
func TestQuickZodiacTotal(t *testing.T) {
	days := [13]int{0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	prev := ZodiacOf(MonthDay(1, 1))
	count := 0
	for m := 1; m <= 12; m++ {
		for d := 1; d <= days[m]; d++ {
			sign := ZodiacOf(MonthDay(m, d))
			if sign < 0 || sign > 11 {
				t.Fatalf("invalid sign %d for %02d-%02d", sign, m, d)
			}
			if sign != prev {
				count++
				prev = sign
			}
		}
	}
	// Wrapping the year crosses 12 boundaries; we started mid-sign so we
	// observe 12 transitions (Capricorn wraps around new year).
	if count != 12 {
		t.Fatalf("saw %d sign transitions over the year, want 12", count)
	}
}

// TestQuickConsistencySlackMonotone: adding slack never turns a
// consistent response inconsistent.
func TestQuickConsistencySlackMonotone(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := Astrology()
		resp := Response{SurveyID: s.ID, WorkerID: "w", Answers: genAnswers(s, seed)}
		if resp.Consistent(s, 0) && !resp.Consistent(s, 2) {
			return false
		}
		if resp.Consistent(s, 1) && !resp.Consistent(s, 5) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
