package survey

import (
	"strings"
	"testing"
)

func TestAuditEmptyPortfolio(t *testing.T) {
	r := AuditPortfolio(nil)
	if r.CompletesQuasiID || r.CollectsSensitive {
		t.Errorf("empty portfolio flagged: %+v", r)
	}
	if len(r.Harvested) != 0 || len(r.MissingForQuasiID) != len(QuasiIDAttributes) {
		t.Errorf("empty portfolio attributes: %+v", r)
	}
	if r.MaxSeverity() != Info {
		t.Errorf("empty portfolio severity %v", r.MaxSeverity())
	}
}

func TestAuditSingleHarmlessSurvey(t *testing.T) {
	lect := Lecturers([]string{"A"})
	r := AuditPortfolio([]*Survey{lect})
	if len(r.Harvested) != 0 {
		t.Errorf("opinion survey harvested %v", r.Harvested)
	}
	if r.MaxSeverity() != Info {
		t.Errorf("severity %v", r.MaxSeverity())
	}
}

func TestAuditPartialPortfolio(t *testing.T) {
	// Astrology alone: day/month (directly and via star sign).
	r := AuditPortfolio([]*Survey{Astrology()})
	if r.CompletesQuasiID {
		t.Error("one survey completes the quasi-identifier")
	}
	found := false
	for _, a := range r.Harvested {
		if a == AttrBirthDayMonth {
			found = true
		}
	}
	if !found {
		t.Errorf("astrology harvest missing day/month: %v", r.Harvested)
	}

	// Astrology + matchmaking: one attribute (zip) away → Warning.
	r = AuditPortfolio([]*Survey{Astrology(), Matchmaking()})
	if r.CompletesQuasiID {
		t.Error("two surveys complete the quasi-identifier")
	}
	if len(r.MissingForQuasiID) != 1 || r.MissingForQuasiID[0] != AttrZIP {
		t.Errorf("missing = %v", r.MissingForQuasiID)
	}
	if r.MaxSeverity() != Warning {
		t.Errorf("severity %v, want warning", r.MaxSeverity())
	}
}

func TestAuditFullPortfolioCritical(t *testing.T) {
	surveys := ProfilingSurveys()
	r := AuditPortfolio(surveys)
	if !r.CompletesQuasiID {
		t.Fatal("the paper's three profiling surveys not flagged")
	}
	if r.MaxSeverity() != Critical {
		t.Errorf("severity %v, want critical", r.MaxSeverity())
	}
	// Adding the health survey mentions sensitive linkage.
	r = AuditPortfolio(append(surveys, Health()))
	if !r.CollectsSensitive {
		t.Error("health survey sensitivity not detected")
	}
	foundLinkable := false
	for _, f := range r.Findings {
		if f.Severity == Critical && strings.Contains(f.Message, "sensitive answers would be linkable") {
			foundLinkable = true
		}
	}
	if !foundLinkable {
		t.Errorf("critical finding does not mention sensitive linkage: %+v", r.Findings)
	}
}

func TestAuditPartialIdentifiers(t *testing.T) {
	// A survey asking only star sign and age still counts toward
	// day/month and birth year.
	s := &Survey{
		ID: "sneaky", Title: "t",
		Questions: []Question{
			{ID: "sign", Text: "sign?", Kind: MultipleChoice, Options: ZodiacSigns, Attribute: AttrStarSign},
			{ID: "age", Text: "age?", Kind: Numeric, ScaleMin: 18, ScaleMax: 90, Attribute: AttrAge},
		},
	}
	zipS := &Survey{
		ID: "zips", Title: "t",
		Questions: []Question{
			{ID: "zip", Text: "zip?", Kind: Numeric, ScaleMin: 1, ScaleMax: 99999, Attribute: AttrZIP},
			{ID: "gender", Text: "gender?", Kind: MultipleChoice, Options: Genders, Attribute: AttrGender},
		},
	}
	r := AuditPortfolio([]*Survey{s, zipS})
	if !r.CompletesQuasiID {
		t.Errorf("partial identifiers not mapped: %+v", r)
	}
}

func TestAuditSensitiveWithFragments(t *testing.T) {
	r := AuditPortfolio([]*Survey{Coverage(), Health()})
	if r.CompletesQuasiID {
		t.Error("zip alone completes quasi-identifier")
	}
	warned := false
	for _, f := range r.Findings {
		if f.Severity == Warning && strings.Contains(f.Message, "sensitive") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("sensitive-plus-fragments not warned: %+v", r.Findings)
	}
}

func TestAuditSeverityString(t *testing.T) {
	if Info.String() != "info" || Warning.String() != "warning" || Critical.String() != "critical" {
		t.Error("severity strings")
	}
	if AuditSeverity(9).String() == "" {
		t.Error("unknown severity empty")
	}
}
