package aggregate

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"loki/internal/core"
	"loki/internal/survey"
)

// accSurvey exercises every accumulator cell kind: two rating questions
// joined by a consistency pair plus a multiple-choice question.
func accSurvey() *survey.Survey {
	return &survey.Survey{
		ID:    "acc-test",
		Title: "Accumulator test survey",
		Questions: []survey.Question{
			{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "q1", Text: "rate again", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "q2", Text: "pick", Kind: survey.MultipleChoice, Options: []string{"a", "b", "c"}},
		},
		Consistency: []survey.ConsistencyPair{{QuestionA: "q0", QuestionB: "q1", Tolerance: 1}},
		RewardCents: 5,
	}
}

// accResponses builds a deterministic mix of levels, ratings (some
// noisy-looking fractional values), choices, and a few inconsistent
// responses.
func accResponses(sv *survey.Survey, n int) []survey.Response {
	levels := []string{"none", "low", "medium", "high"}
	out := make([]survey.Response, 0, n)
	for i := 0; i < n; i++ {
		lvl := levels[i%len(levels)]
		rating := float64(1+i%5) + float64(i%7)/10
		q1 := rating
		if i%9 == 0 {
			q1 = rating - 3 // beyond tolerance even with some slack
		}
		out = append(out, survey.Response{
			SurveyID:     sv.ID,
			WorkerID:     fmt.Sprintf("w%04d", i),
			PrivacyLevel: lvl,
			Obfuscated:   lvl != "none",
			Answers: []survey.Answer{
				survey.RatingAnswer("q0", rating),
				survey.RatingAnswer("q1", q1),
				survey.ChoiceAnswer("q2", i%3),
			},
		})
	}
	return out
}

func newAcc(t *testing.T, sv *survey.Survey) *Accumulator {
	t.Helper()
	a, err := NewAccumulator(core.DefaultSchedule(), sv)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func foldAll(t *testing.T, a *Accumulator, responses []survey.Response) {
	t.Helper()
	for i := range responses {
		if err := a.Add(&responses[i]); err != nil {
			t.Fatal(err)
		}
	}
}

const tol = 1e-9

func near(a, b float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// compareQuestion checks an incremental estimate against a batch one.
func compareQuestion(t *testing.T, tag string, got, want *QuestionEstimate) {
	t.Helper()
	if got.OverallN != want.OverallN {
		t.Fatalf("%s: overall n = %d, want %d", tag, got.OverallN, want.OverallN)
	}
	if !near(got.OverallMean, want.OverallMean) {
		t.Errorf("%s: overall mean %g, want %g", tag, got.OverallMean, want.OverallMean)
	}
	if !near(got.PooledMean, want.PooledMean) || !near(got.PooledVariance, want.PooledVariance) {
		t.Errorf("%s: pooled %g/%g, want %g/%g", tag, got.PooledMean, got.PooledVariance, want.PooledMean, want.PooledVariance)
	}
	for l := range got.Bins {
		g, w := got.Bins[l], want.Bins[l]
		if g.N != w.N || !near(g.Mean, w.Mean) || !near(g.Variance, w.Variance) || !near(g.Deviation, w.Deviation) {
			t.Errorf("%s bin %d: got %+v, want %+v", tag, l, g, w)
		}
	}
}

func compareChoice(t *testing.T, tag string, got, want *ChoiceEstimate) {
	t.Helper()
	if got.N != want.N || got.BinN != want.BinN {
		t.Fatalf("%s: n %d/%v, want %d/%v", tag, got.N, got.BinN, want.N, want.BinN)
	}
	for c := range want.Observed {
		if got.Observed[c] != want.Observed[c] {
			t.Errorf("%s: observed[%d] = %d, want %d", tag, c, got.Observed[c], want.Observed[c])
		}
		if !near(got.Estimated[c], want.Estimated[c]) || !near(got.SE[c], want.SE[c]) {
			t.Errorf("%s: estimated[%d] = %g±%g, want %g±%g", tag, c, got.Estimated[c], got.SE[c], want.Estimated[c], want.SE[c])
		}
	}
}

// TestAccumulatorMatchesEstimator: folding one response at a time and
// finalizing must reproduce the batch estimator exactly (they share the
// finalize step by construction).
func TestAccumulatorMatchesEstimator(t *testing.T) {
	sv := accSurvey()
	responses := accResponses(sv, 500)
	a := newAcc(t, sv)
	foldAll(t, a, responses)
	if a.N() != len(responses) {
		t.Fatalf("folded %d, want %d", a.N(), len(responses))
	}
	fin, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	e, err := NewEstimator(core.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	batchQ, err := e.EstimateSurvey(sv, responses)
	if err != nil {
		t.Fatal(err)
	}
	batchC, err := e.EstimateSurveyChoices(sv, responses)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range batchQ {
		compareQuestion(t, id, fin.Questions[id], want)
	}
	for id, want := range batchC {
		compareChoice(t, id, fin.Choices[id], want)
	}

	// The quality tally must match a from-scratch consistency sweep
	// with the server's slack formula.
	var want QualityTally
	sched := core.DefaultSchedule()
	for i := range responses {
		r := &responses[i]
		lvl, err := core.ParseLevel(r.PrivacyLevel)
		if err != nil {
			t.Fatal(err)
		}
		slack := 0.0
		if r.Obfuscated {
			slack = 3 * sched.Sigma[lvl]
		}
		want.Total++
		if r.Consistent(sv, slack) {
			want.Consistent++
		} else {
			want.Inconsistent++
			want.PerLevelInconsistent[lvl]++
		}
	}
	if fin.Quality != want {
		t.Errorf("quality tally = %+v, want %+v", fin.Quality, want)
	}
	if want.Inconsistent == 0 || want.Consistent == 0 {
		t.Fatalf("degenerate quality fixture: %+v", want)
	}
}

// TestAccumulatorSnapshotRestore: snapshot mid-fold, round-trip the
// state through JSON, restore, fold the rest — identical to an
// uninterrupted fold.
func TestAccumulatorSnapshotRestore(t *testing.T) {
	sv := accSurvey()
	responses := accResponses(sv, 400)
	half := len(responses) / 2

	a := newAcc(t, sv)
	foldAll(t, a, responses[:half])
	snap := a.Snapshot()
	// Folding past the snapshot must not mutate it.
	foldAll(t, a, responses[half:])

	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var state AccumulatorState
	if err := json.Unmarshal(b, &state); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreAccumulator(core.DefaultSchedule(), sv, &state)
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != half {
		t.Fatalf("restored n = %d, want %d", restored.N(), half)
	}
	foldAll(t, restored, responses[half:])

	finA, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	finR, err := restored.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range finA.Questions {
		compareQuestion(t, "restored "+id, finR.Questions[id], want)
	}
	for id, want := range finA.Choices {
		compareChoice(t, "restored "+id, finR.Choices[id], want)
	}
	if finR.Quality != finA.Quality {
		t.Errorf("restored quality = %+v, want %+v", finR.Quality, finA.Quality)
	}

	// Restoring against the wrong survey is refused.
	other := accSurvey()
	other.ID = "other"
	if _, err := RestoreAccumulator(core.DefaultSchedule(), other, &state); err == nil {
		t.Error("state restored against a different survey")
	}

	// A truncated state (missing a question) is refused rather than
	// restored with silently empty bins.
	truncated := a.Snapshot()
	delete(truncated.Questions, "q1")
	if _, err := RestoreAccumulator(core.DefaultSchedule(), sv, truncated); err == nil {
		t.Error("state missing a rating question restored")
	}
	truncated = a.Snapshot()
	delete(truncated.Choices, "q2")
	if _, err := RestoreAccumulator(core.DefaultSchedule(), sv, truncated); err == nil {
		t.Error("state missing a choice question restored")
	}
}

// TestAccumulatorMerge: two partial folds over disjoint halves merge
// into the same estimates as one full fold.
func TestAccumulatorMerge(t *testing.T) {
	sv := accSurvey()
	responses := accResponses(sv, 400)
	half := len(responses) / 2

	full := newAcc(t, sv)
	foldAll(t, full, responses)
	left := newAcc(t, sv)
	foldAll(t, left, responses[:half])
	right := newAcc(t, sv)
	foldAll(t, right, responses[half:])

	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	if left.N() != full.N() {
		t.Fatalf("merged n = %d, want %d", left.N(), full.N())
	}
	finFull, err := full.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	finMerged, err := left.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range finFull.Questions {
		compareQuestion(t, "merged "+id, finMerged.Questions[id], want)
	}
	for id, want := range finFull.Choices {
		compareChoice(t, "merged "+id, finMerged.Choices[id], want)
	}
	if finMerged.Quality != finFull.Quality {
		t.Errorf("merged quality = %+v, want %+v", finMerged.Quality, finFull.Quality)
	}

	// The merge source is unchanged and mismatched surveys are refused.
	if right.N() != len(responses)-half {
		t.Errorf("merge mutated its source: n = %d", right.N())
	}
	other := accSurvey()
	other.ID = "other"
	if err := newAcc(t, sv).Merge(newAcc(t, other)); err == nil {
		t.Error("merged accumulators of different surveys")
	}
}

// TestAccumulatorAddErrors: rejected responses leave the fold state
// untouched.
func TestAccumulatorAddErrors(t *testing.T) {
	sv := accSurvey()
	a := newAcc(t, sv)
	good := accResponses(sv, 3)
	foldAll(t, a, good)
	before, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	wrong := good[0]
	wrong.SurveyID = "other"
	if err := a.Add(&wrong); err == nil {
		t.Error("response for another survey folded")
	}
	badLevel := good[0]
	badLevel.PrivacyLevel = "bogus"
	if err := a.Add(&badLevel); err == nil {
		t.Error("bogus privacy level folded")
	}
	badChoice := good[0]
	badChoice.Answers = append([]survey.Answer(nil), good[0].Answers...)
	badChoice.Answers[2] = survey.ChoiceAnswer("q2", 17)
	if err := a.Add(&badChoice); err == nil {
		t.Error("out-of-range choice folded")
	}

	if a.N() != len(good) {
		t.Fatalf("rejected responses changed n: %d", a.N())
	}
	after, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range before.Questions {
		compareQuestion(t, "after-reject "+id, after.Questions[id], want)
	}
	for id, want := range before.Choices {
		compareChoice(t, "after-reject "+id, after.Choices[id], want)
	}
}

// TestAccumulatorDuplicateAnswers: a response carrying two answers to
// the same question folds only the first, matching the batch
// estimator's Response.Answer lookup.
func TestAccumulatorDuplicateAnswers(t *testing.T) {
	sv := accSurvey()
	r := accResponses(sv, 1)[0]
	r.Answers = append(r.Answers,
		survey.RatingAnswer("q0", 999),
		survey.ChoiceAnswer("q2", 1),
	)

	a := newAcc(t, sv)
	if err := a.Add(&r); err != nil {
		t.Fatal(err)
	}
	fin, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(core.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := e.EstimateQuestion(sv, sv.Question("q0"), []survey.Response{r})
	if err != nil {
		t.Fatal(err)
	}
	compareQuestion(t, "dup q0", fin.Questions["q0"], batch)
	if fin.Questions["q0"].OverallN != 1 {
		t.Fatalf("duplicate answer double-counted: n = %d", fin.Questions["q0"].OverallN)
	}
	batchC, err := e.EstimateChoice(sv, sv.Question("q2"), []survey.Response{r})
	if err != nil {
		t.Fatal(err)
	}
	compareChoice(t, "dup q2", fin.Choices["q2"], batchC)
}

// TestNewAccumulatorValidation mirrors the estimator's constructor
// checks.
func TestNewAccumulatorValidation(t *testing.T) {
	bad := core.DefaultSchedule()
	bad.Sigma[core.None] = 3
	if _, err := NewAccumulator(bad, accSurvey()); err == nil {
		t.Error("invalid schedule accepted")
	}
	if _, err := NewAccumulator(core.DefaultSchedule(), nil); err == nil {
		t.Error("nil survey accepted")
	}
}
