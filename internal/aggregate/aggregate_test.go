package aggregate

import (
	"math"
	"testing"

	"loki/internal/core"
	"loki/internal/rng"
	"loki/internal/survey"
)

func newEst(t *testing.T) *Estimator {
	t.Helper()
	e, err := NewEstimator(core.DefaultSchedule())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEstimatorValidation(t *testing.T) {
	bad := core.DefaultSchedule()
	bad.Sigma[core.None] = 3
	if _, err := NewEstimator(bad); err == nil {
		t.Error("invalid schedule accepted")
	}
}

// buildResponses generates noisy responses to a single rating question
// with the given per-level counts, all rating truth.
func buildResponses(t *testing.T, sv *survey.Survey, q *survey.Question, truth float64, counts [core.NumLevels]int, seed uint64) []survey.Response {
	t.Helper()
	obf, err := core.NewObfuscator(core.DefaultSchedule(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	var out []survey.Response
	id := 0
	for l := 0; l < core.NumLevels; l++ {
		for i := 0; i < counts[l]; i++ {
			noisy, err := obf.ObfuscateAnswer(q, survey.RatingAnswer(q.ID, truth), core.Level(l), r)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, survey.Response{
				SurveyID:     sv.ID,
				WorkerID:     workerName(id),
				Answers:      []survey.Answer{noisy},
				PrivacyLevel: core.Level(l).String(),
				Obfuscated:   l != 0,
			})
			id++
		}
	}
	return out
}

func workerName(i int) string { return "w" + string(rune('A'+i%26)) + string(rune('0'+i%10)) }

func TestEstimateQuestionErrors(t *testing.T) {
	e := newEst(t)
	sv := survey.Lecturers([]string{"A"})
	q := &sv.Questions[0]
	if _, err := e.EstimateQuestion(sv, nil, nil); err == nil {
		t.Error("nil question accepted")
	}
	ft := survey.Question{ID: "t", Kind: survey.FreeText}
	if _, err := e.EstimateQuestion(sv, &ft, nil); err == nil {
		t.Error("free-text question accepted")
	}
	wrong := []survey.Response{{SurveyID: "other", WorkerID: "w"}}
	if _, err := e.EstimateQuestion(sv, q, wrong); err == nil {
		t.Error("response from a different survey accepted")
	}
	badLevel := []survey.Response{{
		SurveyID: sv.ID, WorkerID: "w", PrivacyLevel: "bogus",
		Answers: []survey.Answer{survey.RatingAnswer(q.ID, 3)},
	}}
	if _, err := e.EstimateQuestion(sv, q, badLevel); err == nil {
		t.Error("bogus privacy level accepted")
	}
}

func TestEstimateQuestionEmpty(t *testing.T) {
	e := newEst(t)
	sv := survey.Lecturers([]string{"A"})
	qe, err := e.EstimateQuestion(sv, &sv.Questions[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if qe.OverallN != 0 || qe.OverallMean != 0 {
		t.Errorf("empty estimate = %+v", qe)
	}
}

func TestEstimateUnbiased(t *testing.T) {
	e := newEst(t)
	sv := survey.Lecturers([]string{"A"})
	q := &sv.Questions[0]
	const truth = 3.8
	counts := [core.NumLevels]int{500, 500, 500, 500}
	responses := buildResponses(t, sv, q, truth, counts, 21)
	qe, err := e.EstimateQuestion(sv, q, responses)
	if err != nil {
		t.Fatal(err)
	}
	if qe.OverallN != 2000 {
		t.Fatalf("n = %d", qe.OverallN)
	}
	if math.Abs(qe.OverallMean-truth) > 0.06 {
		t.Errorf("overall mean = %.3f, want %.1f", qe.OverallMean, truth)
	}
	if math.Abs(qe.PooledMean-truth) > 0.06 {
		t.Errorf("pooled mean = %.3f, want %.1f", qe.PooledMean, truth)
	}
	for l := 0; l < core.NumLevels; l++ {
		b := qe.Bins[l]
		if b.N != 500 {
			t.Errorf("bin %v n = %d", core.Level(l), b.N)
		}
		if math.Abs(b.Deviation-(b.Mean-qe.OverallMean)) > 1e-12 {
			t.Errorf("bin %v deviation inconsistent", core.Level(l))
		}
		if want := core.DefaultSchedule().Sigma[l]; b.NoiseSigma != want {
			t.Errorf("bin %v noise sigma %g, want %g", core.Level(l), b.NoiseSigma, want)
		}
	}
	// Variance of the mean grows with the bin's noise.
	if qe.Bins[core.High].Variance <= qe.Bins[core.None].Variance {
		t.Errorf("high bin variance %g not above none bin %g",
			qe.Bins[core.High].Variance, qe.Bins[core.None].Variance)
	}
}

func TestEstimateSingleResponseBin(t *testing.T) {
	e := newEst(t)
	sv := survey.Lecturers([]string{"A"})
	q := &sv.Questions[0]
	counts := [core.NumLevels]int{1, 0, 0, 1}
	responses := buildResponses(t, sv, q, 4, counts, 22)
	qe, err := e.EstimateQuestion(sv, q, responses)
	if err != nil {
		t.Fatal(err)
	}
	if qe.Bins[core.None].Variance <= 0 || qe.Bins[core.High].Variance <= 0 {
		t.Error("single-observation bins claim zero variance")
	}
	if qe.Bins[core.High].Variance <= qe.Bins[core.None].Variance {
		t.Error("model variance ignores noise for tiny bins")
	}
}

func TestEstimateSurvey(t *testing.T) {
	e := newEst(t)
	sv := survey.Lecturers([]string{"A", "B"})
	var responses []survey.Response
	obf, _ := core.NewObfuscator(core.DefaultSchedule(), core.DefaultOptions())
	r := rng.New(23)
	for i := 0; i < 50; i++ {
		a0, _ := obf.ObfuscateAnswer(&sv.Questions[0], survey.RatingAnswer(sv.Questions[0].ID, 4), core.Medium, r)
		a1, _ := obf.ObfuscateAnswer(&sv.Questions[1], survey.RatingAnswer(sv.Questions[1].ID, 2), core.Medium, r)
		responses = append(responses, survey.Response{
			SurveyID: sv.ID, WorkerID: workerName(i), PrivacyLevel: "medium", Obfuscated: true,
			Answers: []survey.Answer{a0, a1},
		})
	}
	ests, err := e.EstimateSurvey(sv, responses)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 2 {
		t.Fatalf("estimates = %d", len(ests))
	}
	if ests[sv.Questions[0].ID].OverallMean <= ests[sv.Questions[1].ID].OverallMean {
		t.Error("survey estimates lost ordering of true means")
	}
}

func TestCI(t *testing.T) {
	e := newEst(t)
	sv := survey.Lecturers([]string{"A"})
	q := &sv.Questions[0]
	counts := [core.NumLevels]int{50, 50, 50, 50}
	responses := buildResponses(t, sv, q, 3.5, counts, 24)
	qe, err := e.EstimateQuestion(sv, q, responses)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := qe.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(qe.OverallMean) {
		t.Error("CI excludes its own mean")
	}
	if iv.Width() <= 0 || iv.Width() > 2 {
		t.Errorf("implausible CI width %g", iv.Width())
	}
	empty := &QuestionEstimate{}
	if _, err := empty.CI(0.95); err == nil {
		t.Error("empty estimate CI accepted")
	}
}

func TestCompareEstimators(t *testing.T) {
	e := newEst(t)
	sv := survey.Lecturers([]string{"A"})
	q := &sv.Questions[0]
	counts := [core.NumLevels]int{100, 100, 100, 100}
	responses := buildResponses(t, sv, q, 4.2, counts, 25)
	cmp, err := e.CompareEstimators(sv, q, responses, 4.2)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.NaiveError < 0 || cmp.PooledError < 0 {
		t.Error("negative errors")
	}
	if math.Abs(cmp.Naive-4.2) > 0.15 || math.Abs(cmp.Pooled-4.2) > 0.15 {
		t.Errorf("estimators far off: %+v", cmp)
	}
}
