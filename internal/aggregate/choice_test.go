package aggregate

import (
	"fmt"
	"math"
	"testing"

	"loki/internal/core"
	"loki/internal/rng"
	"loki/internal/survey"
)

// choiceSurvey is a single 4-option question.
func choiceSurvey() (*survey.Survey, *survey.Question) {
	sv := &survey.Survey{
		ID: "cs", Title: "t",
		Questions: []survey.Question{
			{ID: "q", Text: "pick one", Kind: survey.MultipleChoice,
				Options: []string{"a", "b", "c", "d"}},
		},
	}
	return sv, &sv.Questions[0]
}

// buildChoiceResponses generates responses whose true choices follow
// dist, obfuscated per level with the default schedule.
func buildChoiceResponses(t *testing.T, sv *survey.Survey, q *survey.Question, dist []float64, perLevel int, seed uint64) []survey.Response {
	t.Helper()
	obf, err := core.NewObfuscator(core.DefaultSchedule(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	var out []survey.Response
	id := 0
	for l := 0; l < core.NumLevels; l++ {
		for i := 0; i < perLevel; i++ {
			truth := r.MustCategorical(dist)
			noisy, err := obf.ObfuscateAnswer(q, survey.ChoiceAnswer(q.ID, truth), core.Level(l), r)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, survey.Response{
				SurveyID:     sv.ID,
				WorkerID:     fmt.Sprintf("w%05d", id),
				Answers:      []survey.Answer{noisy},
				PrivacyLevel: core.Level(l).String(),
				Obfuscated:   l != 0,
			})
			id++
		}
	}
	return out
}

func TestEstimateChoiceErrors(t *testing.T) {
	e := newEst(t)
	sv, q := choiceSurvey()
	if _, err := e.EstimateChoice(sv, nil, nil); err == nil {
		t.Error("nil question accepted")
	}
	rq := survey.Question{ID: "r", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5}
	if _, err := e.EstimateChoice(sv, &rq, nil); err == nil {
		t.Error("rating question accepted")
	}
	wrong := []survey.Response{{SurveyID: "other", WorkerID: "w"}}
	if _, err := e.EstimateChoice(sv, q, wrong); err == nil {
		t.Error("foreign response accepted")
	}
	outOfDomain := []survey.Response{{
		SurveyID: sv.ID, WorkerID: "w", PrivacyLevel: "none",
		Answers: []survey.Answer{survey.ChoiceAnswer(q.ID, 9)},
	}}
	if _, err := e.EstimateChoice(sv, q, outOfDomain); err == nil {
		t.Error("out-of-domain choice accepted")
	}
	badLevel := []survey.Response{{
		SurveyID: sv.ID, WorkerID: "w", PrivacyLevel: "bogus",
		Answers: []survey.Answer{survey.ChoiceAnswer(q.ID, 0)},
	}}
	if _, err := e.EstimateChoice(sv, q, badLevel); err == nil {
		t.Error("bogus level accepted")
	}
}

func TestEstimateChoiceDebiases(t *testing.T) {
	e := newEst(t)
	sv, q := choiceSurvey()
	trueDist := []float64{0.55, 0.25, 0.15, 0.05}
	responses := buildChoiceResponses(t, sv, q, trueDist, 3000, 31)
	ce, err := e.EstimateChoice(sv, q, responses)
	if err != nil {
		t.Fatal(err)
	}
	if ce.N != 12000 {
		t.Fatalf("N = %d", ce.N)
	}
	for l := 0; l < core.NumLevels; l++ {
		if ce.BinN[l] != 3000 {
			t.Errorf("bin %v n = %d", core.Level(l), ce.BinN[l])
		}
	}
	est := ce.Distribution()
	for i, want := range trueDist {
		if math.Abs(est[i]-want) > 0.03 {
			t.Errorf("option %d share = %.3f, want %.2f", i, est[i], want)
		}
	}
	// Raw observed counts are visibly flattened by randomized response:
	// the modal option's observed share sits below its true share.
	observedModal := float64(ce.Observed[0]) / float64(ce.N)
	if observedModal >= trueDist[0]-0.02 {
		t.Errorf("observed modal share %.3f not flattened (truth %.2f) — is RR applied?",
			observedModal, trueDist[0])
	}
	// Error bars cover the truth: each estimated count within 4 SE of
	// the true count, and SEs are non-trivial for noisy bins.
	for c := range ce.Estimated {
		trueCount := trueDist[c] * float64(ce.N)
		if ce.SE[c] <= 0 {
			t.Errorf("option %d has zero SE despite noisy bins", c)
			continue
		}
		if diff := math.Abs(ce.Estimated[c] - trueCount); diff > 4*ce.SE[c]+float64(ce.BinN[0]) {
			t.Errorf("option %d estimate %.0f outside 4·SE (%.0f) of truth %.0f",
				c, ce.Estimated[c], ce.SE[c], trueCount)
		}
	}
}

func TestEstimateChoiceEmptyAndNoneOnly(t *testing.T) {
	e := newEst(t)
	sv, q := choiceSurvey()
	ce, err := e.EstimateChoice(sv, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ce.N != 0 {
		t.Errorf("empty N = %d", ce.N)
	}
	for _, v := range ce.Distribution() {
		if v != 0 {
			t.Error("empty distribution nonzero")
		}
	}
	// None-only bins are exact.
	exact := []survey.Response{
		{SurveyID: sv.ID, WorkerID: "w1", PrivacyLevel: "none",
			Answers: []survey.Answer{survey.ChoiceAnswer(q.ID, 2)}},
		{SurveyID: sv.ID, WorkerID: "w2", PrivacyLevel: "none",
			Answers: []survey.Answer{survey.ChoiceAnswer(q.ID, 2)}},
	}
	ce, err = e.EstimateChoice(sv, q, exact)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Estimated[2] != 2 {
		t.Errorf("exact bin estimated = %v", ce.Estimated)
	}
	d := ce.Distribution()
	if d[2] != 1 {
		t.Errorf("exact distribution = %v", d)
	}
}

func TestEstimateSurveyChoices(t *testing.T) {
	e := newEst(t)
	sv := survey.Awareness() // two choice questions
	var responses []survey.Response
	for i := 0; i < 20; i++ {
		responses = append(responses, survey.Response{
			SurveyID: sv.ID, WorkerID: fmt.Sprintf("w%d", i), PrivacyLevel: "none",
			Answers: []survey.Answer{
				survey.ChoiceAnswer("aware", i%2),
				survey.ChoiceAnswer("participate", 1),
			},
		})
	}
	out, err := e.EstimateSurveyChoices(sv, responses)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("choice estimates = %d", len(out))
	}
	if out["participate"].Estimated[1] != 20 {
		t.Errorf("participate estimates = %v", out["participate"].Estimated)
	}
}
