// Package aggregate implements the requester-side estimation Loki's
// server performs over obfuscated responses: per-privacy-bin means,
// their deviation from the overall mean (the quantity plotted in the
// paper's Fig. 2), noise-aware variances and confidence intervals, and an
// inverse-variance pooled estimator that down-weights noisy bins.
//
// Because at-source noise is zero-mean and independent of the true
// answer, the plain average of noisy answers is an unbiased estimator of
// the true mean answer; its variance is (answer variance + noise
// variance)/n, which is why high-privacy bins with few users wander
// furthest from the overall mean — exactly the trade-off Fig. 2 shows.
package aggregate

import (
	"fmt"
	"math"

	"loki/internal/core"
	"loki/internal/stats"
	"loki/internal/survey"
)

// BinEstimate summarises one privacy bin's responses to one question.
type BinEstimate struct {
	Level core.Level `json:"level"`
	// N is the number of responses in the bin.
	N int `json:"n"`
	// Mean is the plain average of the bin's noisy answers (unbiased).
	Mean float64 `json:"mean"`
	// NoiseSigma is the known per-answer noise standard deviation of the
	// bin (from the published schedule).
	NoiseSigma float64 `json:"noise_sigma"`
	// Variance is the estimated variance of Mean.
	Variance float64 `json:"variance"`
	// Deviation is Mean minus the question's overall mean — the Fig. 2
	// y-axis.
	Deviation float64 `json:"deviation"`
}

// QuestionEstimate aggregates one question across all bins.
type QuestionEstimate struct {
	QuestionID string `json:"question_id"`
	// OverallMean is the average over every noisy answer regardless of
	// bin; OverallN is the total response count.
	OverallMean float64 `json:"overall_mean"`
	OverallN    int     `json:"overall_n"`
	// Bins holds per-level estimates. Bins with N == 0 have zero-valued
	// fields.
	Bins [core.NumLevels]BinEstimate `json:"bins"`
	// PooledMean is the inverse-variance weighted combination of the bin
	// means, with PooledVariance its variance.
	PooledMean     float64 `json:"pooled_mean"`
	PooledVariance float64 `json:"pooled_variance"`
}

// CI returns the normal-approximation confidence interval of the overall
// mean at the given level, accounting for the known noise in each bin.
func (qe *QuestionEstimate) CI(level float64) (stats.Interval, error) {
	if qe.OverallN == 0 {
		return stats.Interval{}, stats.ErrEmpty
	}
	// Variance of the overall mean: the overall mean is the N-weighted
	// combination of bin means, so its variance is Σ (n_b/N)²·Var(mean_b).
	variance := 0.0
	n := float64(qe.OverallN)
	for _, b := range qe.Bins {
		if b.N == 0 {
			continue
		}
		w := float64(b.N) / n
		variance += w * w * b.Variance
	}
	z, err := stats.NormalQuantile(0.5 + level/2)
	if err != nil {
		return stats.Interval{}, err
	}
	se := math.Sqrt(variance)
	return stats.Interval{Lo: qe.OverallMean - z*se, Hi: qe.OverallMean + z*se}, nil
}

// Estimator computes QuestionEstimates from obfuscated responses. It
// needs the schedule the clients used so it can attribute the right
// noise variance to each bin — public information in a Loki deployment.
type Estimator struct {
	schedule core.Schedule
}

// NewEstimator returns an estimator for the given published schedule.
func NewEstimator(schedule core.Schedule) (*Estimator, error) {
	if err := schedule.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{schedule: schedule}, nil
}

// binAccum is the resumable fold state of one (question, privacy-level)
// cell: the response count plus Welford running mean and sum of squared
// deviations (M2). It is everything the query-time finalize step needs
// to reproduce the batch estimator — one response can be folded in O(1)
// and two partial folds merge exactly.
type binAccum struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// add folds one noisy answer (Welford's update).
func (b *binAccum) add(x float64) {
	b.N++
	d := x - b.Mean
	b.Mean += d / float64(b.N)
	b.M2 += d * (x - b.Mean)
}

// merge folds another cell covering disjoint responses into this one
// (the parallel-variance update of Chan et al.).
func (b *binAccum) merge(o binAccum) {
	if o.N == 0 {
		return
	}
	if b.N == 0 {
		*b = o
		return
	}
	n := float64(b.N + o.N)
	d := o.Mean - b.Mean
	b.M2 += o.M2 + d*d*float64(b.N)*float64(o.N)/n
	b.Mean += d * float64(o.N) / n
	b.N += o.N
}

// sampleVariance is the unbiased (n-1 denominator) variance of the
// folded answers; 0 with fewer than two observations.
func (b *binAccum) sampleVariance() float64 {
	if b.N < 2 {
		return 0
	}
	return b.M2 / float64(b.N-1)
}

// questionBins is one rating/numeric question's full fold state.
type questionBins [core.NumLevels]binAccum

// EstimateQuestion aggregates all responses' answers to the given rating
// or numeric question: a batch fold over the same accumulator cells the
// incremental Accumulator maintains, finalized identically.
func (e *Estimator) EstimateQuestion(s *survey.Survey, q *survey.Question, responses []survey.Response) (*QuestionEstimate, error) {
	if q == nil {
		return nil, fmt.Errorf("aggregate: nil question")
	}
	if q.Kind != survey.Rating && q.Kind != survey.Numeric {
		return nil, fmt.Errorf("aggregate: question %q is %v; mean estimation needs a numeric kind", q.ID, q.Kind)
	}
	var bins questionBins
	for i := range responses {
		resp := &responses[i]
		if resp.SurveyID != s.ID {
			return nil, fmt.Errorf("aggregate: response for %q mixed into %q", resp.SurveyID, s.ID)
		}
		a := resp.Answer(q.ID)
		if a == nil {
			continue
		}
		lvl, err := core.ParseLevel(resp.PrivacyLevel)
		if err != nil {
			return nil, fmt.Errorf("aggregate: response by %s: %w", resp.WorkerID, err)
		}
		bins[lvl].add(a.Rating)
	}
	return finalizeQuestion(e.schedule, q, &bins)
}

// finalizeQuestion is the query-time estimation step over folded bin
// state: per-bin means, noise-aware variances, deviations from the
// overall mean, and the inverse-variance pooled combination. It is
// shared by the batch Estimator and the incremental Accumulator, so the
// two read paths agree by construction.
func finalizeQuestion(schedule core.Schedule, q *survey.Question, bins *questionBins) (*QuestionEstimate, error) {
	qe := &QuestionEstimate{QuestionID: q.ID}
	var weighted float64
	for l := range bins {
		qe.OverallN += bins[l].N
		weighted += float64(bins[l].N) * bins[l].Mean
	}
	if qe.OverallN == 0 {
		return qe, nil
	}
	qe.OverallMean = weighted / float64(qe.OverallN)

	var pooled []stats.WeightedEstimate
	for l := 0; l < core.NumLevels; l++ {
		ba := bins[l]
		b := BinEstimate{Level: core.Level(l), N: ba.N, NoiseSigma: schedule.SigmaFor(q, core.Level(l))}
		if ba.N > 0 {
			b.Mean = ba.Mean
			b.Variance = binMeanVariance(ba, b.NoiseSigma, q)
			b.Deviation = b.Mean - qe.OverallMean
			pooled = append(pooled, stats.WeightedEstimate{Value: b.Mean, Variance: b.Variance, N: b.N})
		}
		qe.Bins[l] = b
	}
	var err error
	qe.PooledMean, qe.PooledVariance, err = stats.PoolInverseVariance(pooled)
	if err != nil {
		return nil, fmt.Errorf("aggregate: pooling question %q: %w", q.ID, err)
	}
	return qe, nil
}

// binMeanVariance estimates Var(bin mean). With at least two
// observations the empirical variance of the noisy answers already
// includes the noise contribution; a model-based floor
// (noiseσ² + nominal answer variance)/n guards against degenerate small
// samples underestimating their own uncertainty.
func binMeanVariance(ba binAccum, noiseSigma float64, q *survey.Question) float64 {
	n := float64(ba.N)
	// Nominal answer variance: a conservative quarter of the scale's
	// half-width squared (ratings concentrate, they don't span uniformly).
	half := (q.ScaleMax - q.ScaleMin) / 2
	nominal := (half / 2) * (half / 2)
	model := (noiseSigma*noiseSigma + nominal) / n
	if ba.N < 2 {
		return model
	}
	empVar := ba.sampleVariance() / n
	if empVar < model/4 {
		// Small bins occasionally produce near-zero empirical variance
		// by chance; don't let them claim implausible certainty.
		return model / 4
	}
	return empVar
}

// EstimateSurvey aggregates every rating/numeric question in the survey.
// The result maps question ID to its estimate, preserving nothing about
// individual workers.
func (e *Estimator) EstimateSurvey(s *survey.Survey, responses []survey.Response) (map[string]*QuestionEstimate, error) {
	out := make(map[string]*QuestionEstimate)
	for i := range s.Questions {
		q := &s.Questions[i]
		if q.Kind != survey.Rating && q.Kind != survey.Numeric {
			continue
		}
		qe, err := e.EstimateQuestion(s, q, responses)
		if err != nil {
			return nil, err
		}
		out[q.ID] = qe
	}
	return out, nil
}

// NaiveVsPooled reports both estimators against a known truth for the
// estimator ablation (A4): the plain overall mean and the
// inverse-variance pooled mean, with their absolute errors.
type NaiveVsPooled struct {
	QuestionID  string
	Truth       float64
	Naive       float64
	NaiveError  float64
	Pooled      float64
	PooledError float64
}

// CompareEstimators evaluates both estimators for one question against
// ground truth.
func (e *Estimator) CompareEstimators(s *survey.Survey, q *survey.Question, responses []survey.Response, truth float64) (NaiveVsPooled, error) {
	qe, err := e.EstimateQuestion(s, q, responses)
	if err != nil {
		return NaiveVsPooled{}, err
	}
	out := NaiveVsPooled{
		QuestionID: q.ID,
		Truth:      truth,
		Naive:      qe.OverallMean,
		Pooled:     qe.PooledMean,
	}
	out.NaiveError = abs(out.Naive - truth)
	out.PooledError = abs(out.Pooled - truth)
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
