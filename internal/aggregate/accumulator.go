// The incremental half of the read path: where Estimator recomputes
// estimates from a full response slice, Accumulator folds responses one
// at a time into constant-size state — per-question, per-privacy-bin
// running moments and counts plus a quality tally — and applies the
// noise-debiasing finalize step only at query time. Folding is O(answers)
// per response, finalizing is O(questions × levels) regardless of how
// many responses were folded, the state snapshots to a JSON-serializable
// value and restores from it, and two partial folds over disjoint
// responses merge exactly (the fan-in needed to combine per-shard
// partials from a sharded ingest store).
package aggregate

import (
	"fmt"

	"loki/internal/core"
	"loki/internal/survey"
)

// QualityTally is the running result of the server-side random-responder
// screen: how many folded responses pass the survey's redundancy
// (consistency) checks, with noise-proportional slack (3σ at the
// response's level) for obfuscated responses.
type QualityTally struct {
	Total                int                 `json:"total"`
	Consistent           int                 `json:"consistent"`
	Inconsistent         int                 `json:"inconsistent"`
	PerLevelInconsistent [core.NumLevels]int `json:"per_level_inconsistent"`
}

// add folds the other tally into this one.
func (t *QualityTally) add(o QualityTally) {
	t.Total += o.Total
	t.Consistent += o.Consistent
	t.Inconsistent += o.Inconsistent
	for l := range t.PerLevelInconsistent {
		t.PerLevelInconsistent[l] += o.PerLevelInconsistent[l]
	}
}

// Accumulator folds obfuscated responses of one survey into resumable
// aggregate state. It is not safe for concurrent use; callers
// serialize access (the server wraps one per survey in a mutex).
type Accumulator struct {
	schedule  core.Schedule
	sv        *survey.Survey
	n         int
	questions map[string]*questionBins // rating/numeric questions
	choices   map[string]*choiceAccum  // multiple-choice questions
	quality   QualityTally
}

// NewAccumulator returns an empty accumulator for the survey under the
// published noise schedule.
func NewAccumulator(schedule core.Schedule, sv *survey.Survey) (*Accumulator, error) {
	if err := schedule.Validate(); err != nil {
		return nil, err
	}
	if sv == nil {
		return nil, fmt.Errorf("aggregate: accumulator needs a survey")
	}
	a := &Accumulator{
		schedule:  schedule,
		sv:        sv.Clone(), // immune to caller mutation
		questions: make(map[string]*questionBins),
		choices:   make(map[string]*choiceAccum),
	}
	for i := range a.sv.Questions {
		q := &a.sv.Questions[i]
		switch q.Kind {
		case survey.Rating, survey.Numeric:
			a.questions[q.ID] = new(questionBins)
		case survey.MultipleChoice:
			a.choices[q.ID] = newChoiceAccum(len(q.Options))
		}
	}
	return a, nil
}

// SurveyID returns the survey this accumulator folds.
func (a *Accumulator) SurveyID() string { return a.sv.ID }

// N returns how many responses have been folded.
func (a *Accumulator) N() int { return a.n }

// Add folds one response: every answered rating/numeric question's bin
// cell advances by one Welford step, every answered choice question's
// bin count increments, and the quality tally records the response's
// consistency verdict. Add is all-or-nothing: on error no state has
// changed.
func (a *Accumulator) Add(r *survey.Response) error {
	if r.SurveyID != a.sv.ID {
		return fmt.Errorf("aggregate: response for %q folded into %q", r.SurveyID, a.sv.ID)
	}
	lvl, err := core.ParseLevel(r.PrivacyLevel)
	if err != nil {
		return fmt.Errorf("aggregate: response by %s: %w", r.WorkerID, err)
	}
	// Only the first answer per question counts, matching the batch
	// estimator's Response.Answer lookup — without this, a response
	// carrying duplicate question IDs (rejected by the server, but
	// legal at this API) would fold twice here and once there.
	first := func(i int) bool {
		id := r.Answers[i].QuestionID
		for j := 0; j < i; j++ {
			if r.Answers[j].QuestionID == id {
				return false
			}
		}
		return true
	}
	// Validate before mutating anything so a rejected response leaves
	// the fold state untouched.
	for i := range r.Answers {
		ans := &r.Answers[i]
		if ca, ok := a.choices[ans.QuestionID]; ok && first(i) {
			if ans.Choice < 0 || ans.Choice >= ca.K {
				return fmt.Errorf("aggregate: response by %s has choice %d outside [0, %d)", r.WorkerID, ans.Choice, ca.K)
			}
		}
	}
	for i := range r.Answers {
		ans := &r.Answers[i]
		if !first(i) {
			continue
		}
		if bins, ok := a.questions[ans.QuestionID]; ok {
			bins[lvl].add(ans.Rating)
		} else if ca, ok := a.choices[ans.QuestionID]; ok {
			ca.add(lvl, ans.Choice)
		}
	}
	slack := 0.0
	if r.Obfuscated {
		slack = 3 * a.schedule.Sigma[lvl]
	}
	a.quality.Total++
	if r.Consistent(a.sv, slack) {
		a.quality.Consistent++
	} else {
		a.quality.Inconsistent++
		a.quality.PerLevelInconsistent[lvl]++
	}
	a.n++
	return nil
}

// Merge folds another accumulator covering disjoint responses of the
// same survey into this one. The other accumulator is not modified.
func (a *Accumulator) Merge(o *Accumulator) error {
	if o.sv.ID != a.sv.ID {
		return fmt.Errorf("aggregate: merging accumulators for %q and %q", o.sv.ID, a.sv.ID)
	}
	for id, bins := range a.questions {
		ob, ok := o.questions[id]
		if !ok {
			return fmt.Errorf("aggregate: merge source lacks question %q", id)
		}
		for l := range bins {
			bins[l].merge(ob[l])
		}
	}
	for id, ca := range a.choices {
		oc, ok := o.choices[id]
		if !ok {
			return fmt.Errorf("aggregate: merge source lacks question %q", id)
		}
		if err := ca.merge(oc); err != nil {
			return err
		}
	}
	a.quality.add(o.quality)
	a.n += o.n
	return nil
}

// SurveyEstimate is a full finalized aggregate: per-question mean
// estimates, per-choice-question debiased distributions, and the
// quality tally, all derived from fold state in O(questions × levels).
type SurveyEstimate struct {
	SurveyID string `json:"survey_id"`
	// N is the number of responses folded in.
	N         int                          `json:"n"`
	Questions map[string]*QuestionEstimate `json:"questions"`
	Choices   map[string]*ChoiceEstimate   `json:"choices"`
	Quality   QualityTally                 `json:"quality"`
}

// Finalize applies the noise-debiasing estimation step to the current
// state. The accumulator is unchanged and can keep folding; Finalize
// may be called any number of times.
func (a *Accumulator) Finalize() (*SurveyEstimate, error) {
	out := &SurveyEstimate{
		SurveyID:  a.sv.ID,
		N:         a.n,
		Questions: make(map[string]*QuestionEstimate, len(a.questions)),
		Choices:   make(map[string]*ChoiceEstimate, len(a.choices)),
		Quality:   a.quality,
	}
	for i := range a.sv.Questions {
		q := &a.sv.Questions[i]
		if bins, ok := a.questions[q.ID]; ok {
			qe, err := finalizeQuestion(a.schedule, q, bins)
			if err != nil {
				return nil, err
			}
			out.Questions[q.ID] = qe
		} else if ca, ok := a.choices[q.ID]; ok {
			ce, err := finalizeChoice(a.schedule, q, ca)
			if err != nil {
				return nil, err
			}
			out.Choices[q.ID] = ce
		}
	}
	return out, nil
}

// AccumulatorState is the serializable snapshot of an Accumulator. It
// round-trips through encoding/json, which is how a deployment
// checkpoints live aggregate state or ships per-shard partials for a
// Merge on the other side.
type AccumulatorState struct {
	SurveyID  string                   `json:"survey_id"`
	N         int                      `json:"n"`
	Questions map[string]*questionBins `json:"questions"`
	Choices   map[string]*choiceAccum  `json:"choices"`
	Quality   QualityTally             `json:"quality"`
}

// Snapshot captures the current fold state as an independent deep copy:
// further Adds do not affect it.
func (a *Accumulator) Snapshot() *AccumulatorState {
	st := &AccumulatorState{
		SurveyID:  a.sv.ID,
		N:         a.n,
		Questions: make(map[string]*questionBins, len(a.questions)),
		Choices:   make(map[string]*choiceAccum, len(a.choices)),
		Quality:   a.quality,
	}
	for id, bins := range a.questions {
		cp := *bins
		st.Questions[id] = &cp
	}
	for id, ca := range a.choices {
		st.Choices[id] = ca.clone()
	}
	return st
}

// RestoreAccumulator rebuilds an accumulator from a snapshot, resuming
// the fold exactly where Snapshot captured it. The survey and schedule
// must be the ones the snapshot was taken under.
func RestoreAccumulator(schedule core.Schedule, sv *survey.Survey, st *AccumulatorState) (*Accumulator, error) {
	a, err := NewAccumulator(schedule, sv)
	if err != nil {
		return nil, err
	}
	if st.SurveyID != a.sv.ID {
		return nil, fmt.Errorf("aggregate: state for %q restored against %q", st.SurveyID, a.sv.ID)
	}
	// The state must cover every question with a non-nil entry:
	// restoring a truncated or corrupt snapshot would silently report n
	// responses with empty bins (or panic on a JSON null).
	for id := range a.questions {
		if st.Questions[id] == nil {
			return nil, fmt.Errorf("aggregate: state for %q missing question %q", st.SurveyID, id)
		}
	}
	for id := range a.choices {
		if st.Choices[id] == nil {
			return nil, fmt.Errorf("aggregate: state for %q missing question %q", st.SurveyID, id)
		}
	}
	for id, bins := range st.Questions {
		dst, ok := a.questions[id]
		if !ok {
			return nil, fmt.Errorf("aggregate: state question %q not in survey %q", id, sv.ID)
		}
		*dst = *bins
	}
	for id, ca := range st.Choices {
		dst, ok := a.choices[id]
		if !ok {
			return nil, fmt.Errorf("aggregate: state question %q not in survey %q", id, sv.ID)
		}
		if dst.K != ca.K {
			return nil, fmt.Errorf("aggregate: state question %q has %d options, survey has %d", id, ca.K, dst.K)
		}
		a.choices[id] = ca.clone()
	}
	a.quality = st.Quality
	a.n = st.N
	return a, nil
}
