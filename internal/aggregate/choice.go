package aggregate

import (
	"fmt"
	"math"

	"loki/internal/core"
	"loki/internal/dp"
	"loki/internal/survey"
)

// ChoiceEstimate is the requester-side view of a multiple-choice
// question answered through randomized response — the paper's "the
// underlying method ... can be applied to other question types (e.g.,
// multiple-choice questions) in which the response set is countable".
type ChoiceEstimate struct {
	QuestionID string   `json:"question_id"`
	Options    []string `json:"options"`
	// Observed are the raw uploaded counts per option (noisy for bins
	// above none).
	Observed []int `json:"observed"`
	// Estimated are the debiased counts per option: each privacy bin is
	// inverted with its own randomized-response parameters, then bins
	// are summed. Individual entries may be slightly negative by
	// sampling noise.
	Estimated []float64 `json:"estimated"`
	// SE is the standard error of each Estimated count: the randomized-
	// response inversion amplifies multinomial sampling noise by
	// 1/(p−q), so noisy bins contribute much wider error bars than the
	// exact none bin.
	SE []float64 `json:"se"`
	// N is the total number of responses.
	N int `json:"n"`
	// BinN counts responses per privacy bin.
	BinN [core.NumLevels]int `json:"bin_n"`
}

// Distribution returns the estimated option shares, clamping negative
// estimates to zero and renormalizing. It returns zeros when no
// responses exist.
func (ce *ChoiceEstimate) Distribution() []float64 {
	out := make([]float64, len(ce.Estimated))
	total := 0.0
	for i, v := range ce.Estimated {
		if v > 0 {
			out[i] = v
			total += v
		}
	}
	if total == 0 {
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// EstimateChoice aggregates a multiple-choice question across privacy
// bins, debiasing each noisy bin with its published randomized-response
// ε before combining.
func (e *Estimator) EstimateChoice(s *survey.Survey, q *survey.Question, responses []survey.Response) (*ChoiceEstimate, error) {
	if q == nil {
		return nil, fmt.Errorf("aggregate: nil question")
	}
	if q.Kind != survey.MultipleChoice {
		return nil, fmt.Errorf("aggregate: question %q is %v; choice estimation needs multiple-choice", q.ID, q.Kind)
	}
	k := len(q.Options)
	var binCounts [core.NumLevels][]int
	for l := range binCounts {
		binCounts[l] = make([]int, k)
	}
	ce := &ChoiceEstimate{
		QuestionID: q.ID,
		Options:    append([]string(nil), q.Options...),
		Observed:   make([]int, k),
		Estimated:  make([]float64, k),
		SE:         make([]float64, k),
	}
	// variances accumulates Var(Estimated[c]) across bins.
	variances := make([]float64, k)
	for i := range responses {
		resp := &responses[i]
		if resp.SurveyID != s.ID {
			return nil, fmt.Errorf("aggregate: response for %q mixed into %q", resp.SurveyID, s.ID)
		}
		a := resp.Answer(q.ID)
		if a == nil {
			continue
		}
		if a.Choice < 0 || a.Choice >= k {
			return nil, fmt.Errorf("aggregate: response by %s has choice %d outside [0, %d)", resp.WorkerID, a.Choice, k)
		}
		lvl, err := core.ParseLevel(resp.PrivacyLevel)
		if err != nil {
			return nil, fmt.Errorf("aggregate: response by %s: %w", resp.WorkerID, err)
		}
		binCounts[lvl][a.Choice]++
		ce.Observed[a.Choice]++
		ce.BinN[lvl]++
		ce.N++
	}

	for l := 0; l < core.NumLevels; l++ {
		if ce.BinN[l] == 0 {
			continue
		}
		if core.Level(l) == core.None {
			// Exact answers contribute directly, with no noise variance
			// (the multinomial sampling of who answered is the
			// requester's population uncertainty, not estimator error).
			for c, n := range binCounts[l] {
				ce.Estimated[c] += float64(n)
			}
			continue
		}
		rr, err := dp.NewRandomizedResponse(e.schedule.RREpsilon[l], k)
		if err != nil {
			return nil, fmt.Errorf("aggregate: question %q bin %v: %w", q.ID, core.Level(l), err)
		}
		est, err := rr.DebiasCounts(binCounts[l])
		if err != nil {
			return nil, fmt.Errorf("aggregate: question %q bin %v: %w", q.ID, core.Level(l), err)
		}
		p := rr.KeepProbability()
		qFlip := (1 - p) / float64(k-1)
		nBin := float64(ce.BinN[l])
		for c, v := range est {
			ce.Estimated[c] += v
			// Var(observed_c) for a multinomial cell with plug-in
			// probability, amplified by the inversion's 1/(p−q).
			pi := float64(binCounts[l][c]) / nBin
			variances[c] += nBin * pi * (1 - pi) / ((p - qFlip) * (p - qFlip))
		}
	}
	for c, v := range variances {
		if v > 0 {
			ce.SE[c] = math.Sqrt(v)
		}
	}
	return ce, nil
}

// EstimateSurveyChoices aggregates every multiple-choice question of the
// survey, keyed by question ID.
func (e *Estimator) EstimateSurveyChoices(s *survey.Survey, responses []survey.Response) (map[string]*ChoiceEstimate, error) {
	out := make(map[string]*ChoiceEstimate)
	for i := range s.Questions {
		q := &s.Questions[i]
		if q.Kind != survey.MultipleChoice {
			continue
		}
		ce, err := e.EstimateChoice(s, q, responses)
		if err != nil {
			return nil, err
		}
		out[q.ID] = ce
	}
	return out, nil
}
