package aggregate

import (
	"fmt"
	"math"

	"loki/internal/core"
	"loki/internal/dp"
	"loki/internal/survey"
)

// ChoiceEstimate is the requester-side view of a multiple-choice
// question answered through randomized response — the paper's "the
// underlying method ... can be applied to other question types (e.g.,
// multiple-choice questions) in which the response set is countable".
type ChoiceEstimate struct {
	QuestionID string   `json:"question_id"`
	Options    []string `json:"options"`
	// Observed are the raw uploaded counts per option (noisy for bins
	// above none).
	Observed []int `json:"observed"`
	// Estimated are the debiased counts per option: each privacy bin is
	// inverted with its own randomized-response parameters, then bins
	// are summed. Individual entries may be slightly negative by
	// sampling noise.
	Estimated []float64 `json:"estimated"`
	// SE is the standard error of each Estimated count: the randomized-
	// response inversion amplifies multinomial sampling noise by
	// 1/(p−q), so noisy bins contribute much wider error bars than the
	// exact none bin.
	SE []float64 `json:"se"`
	// N is the total number of responses.
	N int `json:"n"`
	// BinN counts responses per privacy bin.
	BinN [core.NumLevels]int `json:"bin_n"`
}

// Distribution returns the estimated option shares, clamping negative
// estimates to zero and renormalizing. It returns zeros when no
// responses exist.
func (ce *ChoiceEstimate) Distribution() []float64 {
	out := make([]float64, len(ce.Estimated))
	total := 0.0
	for i, v := range ce.Estimated {
		if v > 0 {
			out[i] = v
			total += v
		}
	}
	if total == 0 {
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// choiceAccum is the resumable fold state of one multiple-choice
// question: observed counts per option, split by privacy bin. Debiasing
// happens at query time (finalizeChoice), so folding one response is a
// couple of integer increments and partial folds merge by addition.
type choiceAccum struct {
	K         int                   `json:"k"` // number of options
	N         int                   `json:"n"` // responses folded
	Observed  []int                 `json:"observed"`
	BinN      [core.NumLevels]int   `json:"bin_n"`
	BinCounts [core.NumLevels][]int `json:"bin_counts"`
}

func newChoiceAccum(k int) *choiceAccum {
	ca := &choiceAccum{K: k, Observed: make([]int, k)}
	for l := range ca.BinCounts {
		ca.BinCounts[l] = make([]int, k)
	}
	return ca
}

// add folds one uploaded choice. The caller validates the range.
func (ca *choiceAccum) add(lvl core.Level, choice int) {
	ca.BinCounts[lvl][choice]++
	ca.Observed[choice]++
	ca.BinN[lvl]++
	ca.N++
}

// merge folds another accumulation covering disjoint responses.
func (ca *choiceAccum) merge(o *choiceAccum) error {
	if ca.K != o.K {
		return fmt.Errorf("aggregate: merging choice folds with %d and %d options", ca.K, o.K)
	}
	for c := 0; c < ca.K; c++ {
		ca.Observed[c] += o.Observed[c]
	}
	for l := range ca.BinCounts {
		for c := 0; c < ca.K; c++ {
			ca.BinCounts[l][c] += o.BinCounts[l][c]
		}
		ca.BinN[l] += o.BinN[l]
	}
	ca.N += o.N
	return nil
}

// clone returns an independent deep copy.
func (ca *choiceAccum) clone() *choiceAccum {
	cp := newChoiceAccum(ca.K)
	cp.N = ca.N
	copy(cp.Observed, ca.Observed)
	cp.BinN = ca.BinN
	for l := range ca.BinCounts {
		copy(cp.BinCounts[l], ca.BinCounts[l])
	}
	return cp
}

// EstimateChoice aggregates a multiple-choice question across privacy
// bins, debiasing each noisy bin with its published randomized-response
// ε before combining — a batch fold over the same accumulator cells the
// incremental Accumulator maintains, finalized identically.
func (e *Estimator) EstimateChoice(s *survey.Survey, q *survey.Question, responses []survey.Response) (*ChoiceEstimate, error) {
	if q == nil {
		return nil, fmt.Errorf("aggregate: nil question")
	}
	if q.Kind != survey.MultipleChoice {
		return nil, fmt.Errorf("aggregate: question %q is %v; choice estimation needs multiple-choice", q.ID, q.Kind)
	}
	k := len(q.Options)
	ca := newChoiceAccum(k)
	for i := range responses {
		resp := &responses[i]
		if resp.SurveyID != s.ID {
			return nil, fmt.Errorf("aggregate: response for %q mixed into %q", resp.SurveyID, s.ID)
		}
		a := resp.Answer(q.ID)
		if a == nil {
			continue
		}
		if a.Choice < 0 || a.Choice >= k {
			return nil, fmt.Errorf("aggregate: response by %s has choice %d outside [0, %d)", resp.WorkerID, a.Choice, k)
		}
		lvl, err := core.ParseLevel(resp.PrivacyLevel)
		if err != nil {
			return nil, fmt.Errorf("aggregate: response by %s: %w", resp.WorkerID, err)
		}
		ca.add(lvl, a.Choice)
	}
	return finalizeChoice(e.schedule, q, ca)
}

// finalizeChoice is the query-time debiasing step over folded counts:
// each privacy bin is inverted with its own randomized-response
// parameters, then bins are summed. Shared by the batch Estimator and
// the incremental Accumulator.
func finalizeChoice(schedule core.Schedule, q *survey.Question, ca *choiceAccum) (*ChoiceEstimate, error) {
	k := ca.K
	ce := &ChoiceEstimate{
		QuestionID: q.ID,
		Options:    append([]string(nil), q.Options...),
		Observed:   append([]int(nil), ca.Observed...),
		Estimated:  make([]float64, k),
		SE:         make([]float64, k),
		N:          ca.N,
		BinN:       ca.BinN,
	}
	// variances accumulates Var(Estimated[c]) across bins.
	variances := make([]float64, k)
	for l := 0; l < core.NumLevels; l++ {
		if ca.BinN[l] == 0 {
			continue
		}
		if core.Level(l) == core.None {
			// Exact answers contribute directly, with no noise variance
			// (the multinomial sampling of who answered is the
			// requester's population uncertainty, not estimator error).
			for c, n := range ca.BinCounts[l] {
				ce.Estimated[c] += float64(n)
			}
			continue
		}
		rr, err := dp.NewRandomizedResponse(schedule.RREpsilon[l], k)
		if err != nil {
			return nil, fmt.Errorf("aggregate: question %q bin %v: %w", q.ID, core.Level(l), err)
		}
		est, err := rr.DebiasCounts(ca.BinCounts[l])
		if err != nil {
			return nil, fmt.Errorf("aggregate: question %q bin %v: %w", q.ID, core.Level(l), err)
		}
		p := rr.KeepProbability()
		qFlip := (1 - p) / float64(k-1)
		nBin := float64(ca.BinN[l])
		for c, v := range est {
			ce.Estimated[c] += v
			// Var(observed_c) for a multinomial cell with plug-in
			// probability, amplified by the inversion's 1/(p−q).
			pi := float64(ca.BinCounts[l][c]) / nBin
			variances[c] += nBin * pi * (1 - pi) / ((p - qFlip) * (p - qFlip))
		}
	}
	for c, v := range variances {
		if v > 0 {
			ce.SE[c] = math.Sqrt(v)
		}
	}
	return ce, nil
}

// EstimateSurveyChoices aggregates every multiple-choice question of the
// survey, keyed by question ID.
func (e *Estimator) EstimateSurveyChoices(s *survey.Survey, responses []survey.Response) (map[string]*ChoiceEstimate, error) {
	out := make(map[string]*ChoiceEstimate)
	for i := range s.Questions {
		q := &s.Questions[i]
		if q.Kind != survey.MultipleChoice {
			continue
		}
		ce, err := e.EstimateChoice(s, q, responses)
		if err != nil {
			return nil, err
		}
		out[q.ID] = ce
	}
	return out, nil
}
