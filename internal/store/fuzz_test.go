package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the file store's replay path: it
// must never panic, and whenever it opens successfully the store must be
// usable. Run with `go test -fuzz=FuzzReplay ./internal/store` to
// explore; plain `go test` exercises the seed corpus.
func FuzzReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"kind":"survey"}` + "\n"))
	f.Add([]byte(`{"kind":"response"}` + "\n"))
	f.Add([]byte(`{"kind":"mystery","x":1}` + "\n"))
	f.Add([]byte(`{"kind":"survey","survey":{"id":"s","title":"t","questions":[{"id":"q","text":"t","kind":0,"scale_min":1,"scale_max":5}],"reward_cents":0}}` + "\n"))
	f.Add([]byte(`{"kind":"survey","survey":{"id":"s"` /* truncated, no newline */))
	f.Add([]byte("not json at all\n{\"kind\":\"survey\"}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := OpenFile(path)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// An opened store must serve reads and accept a close.
		if _, err := st.Surveys(); err != nil {
			t.Errorf("opened store cannot list surveys: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Errorf("opened store cannot close: %v", err)
		}
	})
}
