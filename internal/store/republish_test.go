package store

import (
	"path/filepath"
	"testing"

	"loki/internal/survey"
)

func republishSurveyV1() *survey.Survey {
	return &survey.Survey{
		ID:    "repub",
		Title: "Republish test",
		Questions: []survey.Question{
			{ID: "q0", Text: "pick", Kind: survey.MultipleChoice, Options: []string{"a", "b"}},
		},
		RewardCents: 1,
	}
}

// republishSurveyV2 adds a question, so v1-era responses do not validate
// under it — which is exactly what makes replay order matter.
func republishSurveyV2() *survey.Survey {
	sv := republishSurveyV1()
	sv.Title = "Republish test v2"
	sv.Questions = append(sv.Questions, survey.Question{
		ID: "q1", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5,
	})
	return sv
}

func v1Response(i int) *survey.Response {
	return &survey.Response{
		SurveyID: "repub",
		WorkerID: "w",
		Answers:  []survey.Answer{survey.ChoiceAnswer("q0", i%2)},
	}
}

func v2Response(i int) *survey.Response {
	r := v1Response(i)
	r.Answers = append(r.Answers, survey.RatingAnswer("q1", float64(1+i%5)))
	return r
}

func TestMemReplaceSurvey(t *testing.T) {
	st := NewMem()
	defer st.Close()
	if err := st.PutSurvey(republishSurveyV1()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResponse(v1Response(0)); err != nil {
		t.Fatal(err)
	}
	if err := st.ReplaceSurvey(republishSurveyV2()); err != nil {
		t.Fatal(err)
	}
	sv, err := st.Survey("repub")
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Questions) != 2 {
		t.Fatalf("definition not replaced: %d questions", len(sv.Questions))
	}
	// Old responses stay; new ones validate against v2.
	if st.ResponseCount("repub") != 1 {
		t.Fatal("replace dropped responses")
	}
	if err := st.AppendResponse(v1Response(1)); err == nil {
		t.Fatal("v1-shaped response accepted under v2")
	}
	if err := st.AppendResponse(v2Response(1)); err != nil {
		t.Fatal(err)
	}
	// ReplaceSurvey on a fresh ID is an upsert.
	fresh := republishSurveyV1()
	fresh.ID = "fresh"
	if err := st.ReplaceSurvey(fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Survey("fresh"); err != nil {
		t.Fatal(err)
	}
}

// TestFileReplaceSurveyReplay: a republish in the middle of the log must
// replay — responses appended before it validate against the definition
// in effect when they were appended, not the final one.
func TestFileReplaceSurveyReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutSurvey(republishSurveyV1()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.AppendResponse(v1Response(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.ReplaceSurvey(republishSurveyV2()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResponse(v2Response(3)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFile(path)
	if err != nil {
		t.Fatalf("replay with republish record failed: %v", err)
	}
	defer st2.Close()
	sv, err := st2.Survey("repub")
	if err != nil {
		t.Fatal(err)
	}
	if len(sv.Questions) != 2 || sv.Title != "Republish test v2" {
		t.Fatalf("replayed definition = %q with %d questions, want v2", sv.Title, len(sv.Questions))
	}
	if got := st2.ResponseCount("repub"); got != 4 {
		t.Fatalf("replayed %d responses, want 4", got)
	}
	// Sequence numbers stay stable across the republish.
	var seqs []uint64
	err = st2.ScanResponses("repub", 0, func(seq uint64, _ *survey.Response) error {
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("seq %d at position %d", seq, i)
		}
	}
}
