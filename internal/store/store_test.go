package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"loki/internal/survey"
)

func sampleSurvey() *survey.Survey {
	return survey.Lecturers([]string{"A", "B"})
}

func sampleResponse(worker string) *survey.Response {
	return &survey.Response{
		SurveyID: survey.LecturerID,
		WorkerID: worker,
		Answers: []survey.Answer{
			survey.RatingAnswer("lecturer-00", 4),
			survey.RatingAnswer("lecturer-01", 3),
		},
		PrivacyLevel: "medium",
		Obfuscated:   true,
	}
}

// storeTest exercises the Store contract against any implementation.
func storeTest(t *testing.T, st Store) {
	t.Helper()
	sv := sampleSurvey()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	if err := st.PutSurvey(sv); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate put: %v", err)
	}
	bad := &survey.Survey{ID: "bad"}
	if err := st.PutSurvey(bad); err == nil {
		t.Fatal("invalid survey stored")
	}

	got, err := st.Survey(sv.ID)
	if err != nil || got.ID != sv.ID {
		t.Fatalf("Survey: %v, %v", got, err)
	}
	if _, err := st.Survey("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing survey: %v", err)
	}
	all, err := st.Surveys()
	if err != nil || len(all) != 1 {
		t.Fatalf("Surveys: %d, %v", len(all), err)
	}

	if err := st.AppendResponse(sampleResponse("w1")); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResponse(sampleResponse("w2")); err != nil {
		t.Fatal(err)
	}
	orphan := sampleResponse("w3")
	orphan.SurveyID = "ghost"
	if err := st.AppendResponse(orphan); !errors.Is(err, ErrNotFound) {
		t.Fatalf("orphan response: %v", err)
	}
	invalid := sampleResponse("w4")
	invalid.Answers = invalid.Answers[:1]
	if err := st.AppendResponse(invalid); err == nil {
		t.Fatal("incomplete response stored")
	}

	rs, err := st.Responses(sv.ID)
	if err != nil || len(rs) != 2 {
		t.Fatalf("Responses: %d, %v", len(rs), err)
	}
	if rs[0].WorkerID != "w1" || rs[1].WorkerID != "w2" {
		t.Fatal("append order lost")
	}
	if _, err := st.Responses("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing responses: %v", err)
	}
	if st.ResponseCount(sv.ID) != 2 || st.ResponseCount("ghost") != 0 {
		t.Fatal("ResponseCount wrong")
	}

	// The returned slice must be a copy.
	rs[0].WorkerID = "tampered"
	rs2, _ := st.Responses(sv.ID)
	if rs2[0].WorkerID == "tampered" {
		t.Fatal("Responses leaked internal state")
	}
}

func TestMemStore(t *testing.T) {
	st := NewMem()
	storeTest(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.PutSurvey(sampleSurvey()); err == nil {
		t.Fatal("use after close accepted")
	}
	if err := st.AppendResponse(sampleResponse("w")); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestMemStoreSurveyCopied(t *testing.T) {
	st := NewMem()
	sv := sampleSurvey()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	sv.Title = "mutated"
	got, _ := st.Survey(survey.LecturerID)
	if got.Title == "mutated" {
		t.Fatal("PutSurvey did not copy")
	}
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	storeTest(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal("double close errored")
	}
	if err := st.PutSurvey(sampleSurvey()); err == nil {
		t.Fatal("use after close accepted")
	}

	// Reopen: replay restores everything.
	st2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.ResponseCount(survey.LecturerID) != 2 {
		t.Fatalf("replay lost responses: %d", st2.ResponseCount(survey.LecturerID))
	}
	sv, err := st2.Survey(survey.LecturerID)
	if err != nil || len(sv.Questions) != 2 {
		t.Fatalf("replay lost survey: %v", err)
	}
	// And the store still accepts appends.
	if err := st2.AppendResponse(sampleResponse("w9")); err != nil {
		t.Fatal(err)
	}
}

func TestFileStorePartialTrailingRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutSurvey(sampleSurvey()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResponse(sampleResponse("w1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"response","resp`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenFile(path)
	if err != nil {
		t.Fatalf("partial trailing record broke open: %v", err)
	}
	defer st2.Close()
	if st2.ResponseCount(survey.LecturerID) != 1 {
		t.Fatalf("responses after recovery = %d", st2.ResponseCount(survey.LecturerID))
	}
	// The partial record was truncated away; appends resume cleanly.
	if err := st2.AppendResponse(sampleResponse("w2")); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.ResponseCount(survey.LecturerID) != 2 {
		t.Fatalf("post-recovery append lost: %d", st3.ResponseCount(survey.LecturerID))
	}
}

func TestFileStoreCorruptInterior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	if err := os.WriteFile(path, []byte("this is not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("corrupt interior line accepted")
	}
}

func TestFileStoreUnknownKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	if err := os.WriteFile(path, []byte(`{"kind":"mystery"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("unknown record kind accepted")
	}
}

func TestFileStoreMissingPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	if err := os.WriteFile(path, []byte(`{"kind":"survey"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("survey record without payload accepted")
	}
}

func TestFileStoreBadDirectory(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing", "loki.jsonl")); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestConcurrentAppends(t *testing.T) {
	for _, mk := range []func(t *testing.T) Store{
		func(t *testing.T) Store { return NewMem() },
		func(t *testing.T) Store {
			st, err := OpenFile(filepath.Join(t.TempDir(), "c.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
	} {
		st := mk(t)
		if err := st.PutSurvey(sampleSurvey()); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if err := st.AppendResponse(sampleResponse("w")); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if got := st.ResponseCount(survey.LecturerID); got != 160 {
			t.Fatalf("concurrent appends lost data: %d", got)
		}
		st.Close()
	}
}
