package store

import (
	"errors"
	"path/filepath"
	"testing"

	"loki/internal/survey"
)

// scanTest exercises the ScanResponses contract against any
// implementation.
func scanTest(t *testing.T, st Store) {
	t.Helper()
	sv := sampleSurvey()
	if err := st.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	workers := []string{"w1", "w2", "w3", "w4", "w5"}
	for _, w := range workers {
		if err := st.AppendResponse(sampleResponse(w)); err != nil {
			t.Fatal(err)
		}
	}

	// Full scan: seq 1..n in append order.
	var seqs []uint64
	var got []string
	err := st.ScanResponses(sv.ID, 0, func(seq uint64, r *survey.Response) error {
		seqs = append(seqs, seq)
		got = append(got, r.WorkerID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != len(workers) {
		t.Fatalf("scanned %d responses, want %d", len(seqs), len(workers))
	}
	for i := range seqs {
		if seqs[i] != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, seqs[i], i+1)
		}
		if got[i] != workers[i] {
			t.Fatalf("worker[%d] = %q, want %q", i, got[i], workers[i])
		}
	}

	// Resumption: fromSeq k yields exactly the tail after k.
	var tail []string
	if err := st.ScanResponses(sv.ID, 3, func(_ uint64, r *survey.Response) error {
		tail = append(tail, r.WorkerID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 || tail[0] != "w4" || tail[1] != "w5" {
		t.Fatalf("tail after seq 3 = %v", tail)
	}

	// A cursor at (or past) the end yields nothing.
	for _, from := range []uint64{5, 99} {
		calls := 0
		if err := st.ScanResponses(sv.ID, from, func(uint64, *survey.Response) error {
			calls++
			return nil
		}); err != nil || calls != 0 {
			t.Fatalf("scan from %d: %d calls, err %v", from, calls, err)
		}
	}

	// fn errors abort the scan and surface verbatim.
	boom := errors.New("boom")
	calls := 0
	err = st.ScanResponses(sv.ID, 0, func(uint64, *survey.Response) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("aborting scan: %d calls, err %v", calls, err)
	}

	// Unknown surveys are refused.
	if err := st.ScanResponses("ghost", 0, func(uint64, *survey.Response) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown survey scan: %v", err)
	}

	// Responses (the compatibility wrapper) agrees with the scan.
	rs, err := st.Responses(sv.ID)
	if err != nil || len(rs) != len(workers) {
		t.Fatalf("Responses: %d, %v", len(rs), err)
	}
	for i := range rs {
		if rs[i].WorkerID != workers[i] {
			t.Fatalf("Responses[%d] = %q, want %q", i, rs[i].WorkerID, workers[i])
		}
	}
}

func TestMemScanResponses(t *testing.T) {
	st := NewMem()
	defer st.Close()
	scanTest(t, st)
}

func TestFileScanResponses(t *testing.T) {
	st, err := OpenFile(filepath.Join(t.TempDir(), "loki.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	scanTest(t, st)
}

// TestFileScanSeqStableAcrossReopen checks that sequence numbers — and
// therefore saved cursors — survive a restart of the durable store.
func TestFileScanSeqStableAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutSurvey(sampleSurvey()); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"w1", "w2", "w3"} {
		if err := st.AppendResponse(sampleResponse(w)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var tail []string
	if err := st2.ScanResponses(survey.LecturerID, 2, func(_ uint64, r *survey.Response) error {
		tail = append(tail, r.WorkerID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0] != "w3" {
		t.Fatalf("resumed tail after reopen = %v", tail)
	}
}

// TestSurveyReturnsCopy is the interior-pointer regression test: a
// caller mutating the survey a store hands out — directly or through
// the shared Questions slice — must not corrupt the stored definition.
func TestSurveyReturnsCopy(t *testing.T) {
	st := NewMem()
	defer st.Close()
	if err := st.PutSurvey(sampleSurvey()); err != nil {
		t.Fatal(err)
	}

	got, err := st.Survey(survey.LecturerID)
	if err != nil {
		t.Fatal(err)
	}
	got.Title = "defaced"
	got.Questions[0].Text = "defaced"
	got.Questions[0].ScaleMax = 99

	again, err := st.Survey(survey.LecturerID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Title == "defaced" || again.Questions[0].Text == "defaced" || again.Questions[0].ScaleMax == 99 {
		t.Fatal("Survey leaked interior pointers into the stored definition")
	}

	all, err := st.Surveys()
	if err != nil || len(all) != 1 {
		t.Fatalf("Surveys: %d, %v", len(all), err)
	}
	all[0].Questions[0].Text = "defaced-via-list"
	again, _ = st.Survey(survey.LecturerID)
	if again.Questions[0].Text == "defaced-via-list" {
		t.Fatal("Surveys leaked interior pointers into the stored definition")
	}
}
