package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"loki/internal/blockio"
	"loki/internal/survey"
)

// SyncPolicy selects when the file store makes appended records durable
// with fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged mutation
	// survives a machine crash. This is the default.
	SyncAlways SyncPolicy = iota
	// SyncInterval flushes and fsyncs on a timer: a crash can lose at
	// most the last interval's worth of acknowledged mutations. Use for
	// throughput when bounded loss is acceptable.
	SyncInterval
	// SyncNever flushes to the OS on every append but never fsyncs
	// (except on Close): a process crash loses nothing, a machine crash
	// may lose anything the kernel had not written back.
	SyncNever
)

// FileOptions tune a file-backed store.
type FileOptions struct {
	// Sync is the durability policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the flush period for SyncInterval (default 100ms).
	Interval time.Duration
	// Codec is the encoding for a log created by this open:
	// blockio.CodecJSON (the default here — readable lines) or
	// blockio.CodecBinary (compressed, checksummed blockio blocks; what
	// the server configures). An EXISTING log keeps its own format
	// regardless: the codec is sniffed from the file's magic on open, so
	// appends never mix formats within one file.
	Codec string
}

// File is a durable Store backed by an append-only record log: readable
// JSON lines (this package's default) or compressed, checksummed blockio
// blocks (FileOptions.Codec; what the server configures). Every mutation
// is one record; opening the store sniffs the file's format and replays
// it into an in-memory index. Partial trailing writes (a crash
// mid-append) are detected and truncated away on open.
//
// Durability: under the default SyncAlways policy every acknowledged
// mutation has been fsynced before PutSurvey/AppendResponse returns. See
// SyncPolicy for the weaker modes.
type File struct {
	mu   sync.Mutex
	mem  *Mem
	f    *os.File
	w    *bufio.Writer   // JSON-lines writer; nil under the binary codec
	bw   *blockio.Writer // binary writer; nil under the JSON codec
	path string
	opts FileOptions
	// closed refuses mutations after Close (the writers stay non-nil so
	// Close itself can flush them exactly once).
	closed bool
	stop   chan struct{} // stops the SyncInterval flusher
	done   chan struct{}
	// syncErr is the first append-path or background flush/fsync
	// failure; once set, every subsequent append and Close reports it.
	// Sticky by design: after a failed fsync the kernel may have dropped
	// the dirty pages and a later fsync can falsely succeed, so
	// continuing to acknowledge appends would silently void the
	// durability bound.
	syncErr error
}

// record is one log entry. Exactly one payload field is set. A
// "republish" record carries a survey definition that overwrites the one
// currently in effect; replay applies records in order, so responses
// logged before a republish replay against the definition they were
// validated under.
type record struct {
	Kind     string           `json:"kind"` // "survey" | "republish" | "response"
	Survey   *survey.Survey   `json:"survey,omitempty"`
	Response *survey.Response `json:"response,omitempty"`
	// LoggedUnixNano is when the record was appended; survey records use
	// it to restore publish timestamps in the republish history on
	// replay. Zero in logs written before it existed.
	LoggedUnixNano int64 `json:"logged_unix_nano,omitempty"`
}

// OpenFile opens (creating if necessary) a file-backed store at path and
// replays its log. Appends are fsynced before they are acknowledged
// (SyncAlways); use OpenFileWith to relax that.
func OpenFile(path string) (*File, error) {
	return OpenFileWith(path, FileOptions{Sync: SyncAlways})
}

// OpenFileWith opens a file-backed store with an explicit durability
// policy.
func OpenFileWith(path string, opts FileOptions) (*File, error) {
	switch opts.Sync {
	case SyncAlways, SyncInterval, SyncNever:
	default:
		return nil, fmt.Errorf("store: unknown sync policy %d", int(opts.Sync))
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if opts.Codec == "" {
		opts.Codec = blockio.CodecJSON
	}
	if !blockio.ValidCodec(opts.Codec) {
		return nil, fmt.Errorf("store: unknown codec %q", opts.Codec)
	}
	fs := &File{mem: NewMem(), path: path, opts: opts}
	// A non-empty log dictates its own codec (never mix formats within
	// one file); a fresh or empty one takes the configured codec.
	binary := opts.Codec == blockio.CodecBinary
	if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
		if binary, err = blockio.Sniff(path); err != nil {
			return nil, fmt.Errorf("store: sniff %s: %w", path, err)
		}
	}
	// Replay complete records into the memory index; a partial trailing
	// record (crash mid-append) is truncated away. A missing file just
	// means a fresh store.
	var nextSeq uint64 = 1
	var err error
	if binary {
		_, err = blockio.Replay(path, true, func(seq uint64, payload []byte) error {
			nextSeq = seq + 1
			return fs.applyRecord(payload)
		})
	} else {
		err = ReplayLines(path, true, fs.applyRecord)
	}
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek %s: %w", path, err)
	}
	fs.f = f
	if binary {
		// Resumes the unsealed block log at its repaired tail; the log is
		// never sealed (appends continue across opens), so replay always
		// scans it with torn-tail semantics.
		fs.bw, err = blockio.NewWriterAt(f, off, nextSeq)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: resume %s: %w", path, err)
		}
	} else {
		fs.w = bufio.NewWriter(f)
	}
	if opts.Sync == SyncInterval {
		fs.stop = make(chan struct{})
		fs.done = make(chan struct{})
		go fs.flushLoop(fs.stop, fs.done)
	}
	return fs, nil
}

// flushLoop periodically flushes and fsyncs under SyncInterval. The
// channels are passed in because Close nils the fields while the loop
// runs.
func (fs *File) flushLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(fs.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Flush under the lock, but fsync outside it: a slow fsync
			// must not stall appenders (it still bounds loss to one
			// interval, since everything flushed so far is in the page
			// cache the fsync covers).
			fs.mu.Lock()
			if fs.closed || fs.syncErr != nil {
				fs.mu.Unlock()
				continue
			}
			err := fs.flushLog()
			f := fs.f
			fs.mu.Unlock()
			if err == nil {
				err = f.Sync()
			}
			if err != nil {
				fs.mu.Lock()
				if !fs.closed && fs.syncErr == nil {
					fs.syncErr = fmt.Errorf("store: background sync %s: %w", fs.path, err)
				}
				fs.mu.Unlock()
			}
		case <-stop:
			return
		}
	}
}

// applyRecord replays one complete log line into the memory index.
// Corrupt or malformed records refuse the open rather than silently
// dropping data.
func (fs *File) applyRecord(line []byte) error {
	var rec record
	if err := json.Unmarshal(line, &rec); err != nil {
		return fmt.Errorf("corrupt record: %w", err)
	}
	switch rec.Kind {
	case "survey":
		if rec.Survey == nil {
			return errors.New("survey record without payload")
		}
		if err := fs.mem.PutSurvey(rec.Survey); err != nil {
			return err
		}
		fs.mem.setLastVersionTime(rec.Survey.ID, rec.LoggedUnixNano)
		return nil
	case "republish":
		if rec.Survey == nil {
			return errors.New("republish record without payload")
		}
		if err := fs.mem.ReplaceSurvey(rec.Survey); err != nil {
			return err
		}
		fs.mem.setLastVersionTime(rec.Survey.ID, rec.LoggedUnixNano)
		return nil
	case "response":
		if rec.Response == nil {
			return errors.New("response record without payload")
		}
		return fs.mem.AppendResponse(rec.Response)
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
}

// writeRec buffers one marshaled record in the log's codec framing.
func (fs *File) writeRec(b []byte) error {
	if fs.bw != nil {
		_, err := fs.bw.Append(b)
		return err
	}
	if _, err := fs.w.Write(b); err != nil {
		return err
	}
	return fs.w.WriteByte('\n')
}

// flushLog pushes buffered records to the OS; under the binary codec
// that cuts the open block, so every flush is a recoverable boundary.
func (fs *File) flushLog() error {
	if fs.bw != nil {
		return fs.bw.Flush()
	}
	return fs.w.Flush()
}

// append writes one record and makes it as durable as the sync policy
// promises: flushed to the OS always, fsynced under SyncAlways
// (SyncInterval leaves the fsync to the flusher goroutine). Any I/O
// failure poisons the store: the on-disk state is no longer trustworthy.
func (fs *File) append(rec *record) error {
	if fs.syncErr != nil {
		return fs.syncErr
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshal: %w", err)
	}
	werr := func() error {
		if err := fs.writeRec(b); err != nil {
			return fmt.Errorf("store: write %s: %w", fs.path, err)
		}
		if err := fs.flushLog(); err != nil {
			return fmt.Errorf("store: flush %s: %w", fs.path, err)
		}
		if fs.opts.Sync == SyncAlways {
			if err := fs.f.Sync(); err != nil {
				return fmt.Errorf("store: sync %s: %w", fs.path, err)
			}
		}
		return nil
	}()
	if werr != nil {
		fs.syncErr = werr
	}
	return werr
}

// PutSurvey implements Store: validate, make the record durable, then
// publish it to the memory index. Log-before-index means a failed disk
// append never leaves a phantom record visible to reads.
func (fs *File) PutSurvey(s *survey.Survey) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return errors.New("store: use after close")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if _, err := fs.mem.Survey(s.ID); err == nil {
		return fmt.Errorf("store: survey %q: %w", s.ID, ErrExists)
	}
	if err := fs.append(&record{Kind: "survey", Survey: s, LoggedUnixNano: time.Now().UnixNano()}); err != nil {
		return err
	}
	return fs.mem.PutSurvey(s)
}

// ReplaceSurvey implements Store: the new definition is logged as a
// "republish" record (durable before visible, like every mutation) and
// then overwrites the memory index. Earlier records are untouched, so
// replay still validates old responses against the definition they were
// appended under.
func (fs *File) ReplaceSurvey(s *survey.Survey) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return errors.New("store: use after close")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if err := fs.append(&record{Kind: "republish", Survey: s, LoggedUnixNano: time.Now().UnixNano()}); err != nil {
		return err
	}
	return fs.mem.ReplaceSurvey(s)
}

// Survey implements Store.
func (fs *File) Survey(id string) (*survey.Survey, error) { return fs.mem.Survey(id) }

// SurveyHistory implements Historian: publish events replayed from the
// log, with their logged timestamps.
func (fs *File) SurveyHistory(surveyID string) []SurveyVersion {
	return fs.mem.SurveyHistory(surveyID)
}

// Surveys implements Store.
func (fs *File) Surveys() ([]*survey.Survey, error) { return fs.mem.Surveys() }

// AppendResponse implements Store: validate, make the record durable,
// then publish it to the memory index (see PutSurvey).
func (fs *File) AppendResponse(r *survey.Response) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return errors.New("store: use after close")
	}
	s, err := fs.mem.Survey(r.SurveyID)
	if err != nil {
		return err
	}
	if err := r.Validate(s); err != nil {
		return err
	}
	if err := fs.append(&record{Kind: "response", Response: r}); err != nil {
		return err
	}
	return fs.mem.AppendResponse(r)
}

// AppendResponses implements BatchAppender: one buffered write per
// record, one flush, one fsync for the whole batch — the fsync
// amortization that makes batched ingestion worth routing. Validation
// runs for every record before any byte is written, so a rejected batch
// leaves the log untouched.
func (fs *File) AppendResponses(rs []survey.Response) ([]int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil, errors.New("store: use after close")
	}
	if fs.syncErr != nil {
		return nil, fs.syncErr
	}
	for i := range rs {
		s, err := fs.mem.Survey(rs[i].SurveyID)
		if err != nil {
			return nil, err
		}
		if err := rs[i].Validate(s); err != nil {
			return nil, err
		}
	}
	werr := func() error {
		for i := range rs {
			b, err := json.Marshal(&record{Kind: "response", Response: &rs[i]})
			if err != nil {
				return fmt.Errorf("store: marshal: %w", err)
			}
			if err := fs.writeRec(b); err != nil {
				return fmt.Errorf("store: write %s: %w", fs.path, err)
			}
		}
		if err := fs.flushLog(); err != nil {
			return fmt.Errorf("store: flush %s: %w", fs.path, err)
		}
		if fs.opts.Sync == SyncAlways {
			if err := fs.f.Sync(); err != nil {
				return fmt.Errorf("store: sync %s: %w", fs.path, err)
			}
		}
		return nil
	}()
	if werr != nil {
		// The on-disk tail is unknowable mid-batch; poison the store and
		// report nothing appended (replay truncates any torn tail).
		fs.syncErr = werr
		return nil, werr
	}
	counts := make([]int, len(rs))
	for i := range rs {
		if err := fs.mem.AppendResponse(&rs[i]); err != nil {
			return counts[:i], err
		}
		counts[i] = fs.mem.ResponseCount(rs[i].SurveyID)
	}
	return counts, nil
}

// ScanResponses implements Store, serving from the replayed memory
// index (sequence numbers are stable across restarts because replay
// preserves append order).
func (fs *File) ScanResponses(surveyID string, fromSeq uint64, fn func(seq uint64, r *survey.Response) error) error {
	return fs.mem.ScanResponses(surveyID, fromSeq, fn)
}

// Responses implements Store.
func (fs *File) Responses(surveyID string) ([]survey.Response, error) {
	return fs.mem.Responses(surveyID)
}

// ResponseCount implements Store.
func (fs *File) ResponseCount(surveyID string) int { return fs.mem.ResponseCount(surveyID) }

// Close flushes, fsyncs and closes the log file.
func (fs *File) Close() error {
	fs.mu.Lock()
	stop, done := fs.stop, fs.done
	fs.stop, fs.done = nil, nil
	fs.mu.Unlock()
	if stop != nil {
		close(stop) // must not hold mu: the flusher needs it to exit
		<-done
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	flushErr := fs.syncErr
	if flushErr == nil {
		flushErr = fs.flushLog()
	}
	if flushErr == nil {
		flushErr = fs.f.Sync()
	}
	fs.closed = true
	closeErr := fs.f.Close()
	if mErr := fs.mem.Close(); mErr != nil && flushErr == nil {
		flushErr = mErr
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

var _ Store = (*File)(nil)
