package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"loki/internal/survey"
)

// File is a durable Store backed by an append-only JSON-lines log. Every
// mutation is a single JSON record on its own line; opening the store
// replays the log into an in-memory index. Partial trailing writes (a
// crash mid-append) are detected and truncated away on open.
type File struct {
	mu   sync.Mutex
	mem  *Mem
	f    *os.File
	w    *bufio.Writer
	path string
}

// record is one log entry. Exactly one payload field is set.
type record struct {
	Kind     string           `json:"kind"` // "survey" | "response"
	Survey   *survey.Survey   `json:"survey,omitempty"`
	Response *survey.Response `json:"response,omitempty"`
}

// OpenFile opens (creating if necessary) a file-backed store at path and
// replays its log.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	fs := &File{mem: NewMem(), f: f, path: path}
	valid, err := fs.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop any partial trailing record, then position for appends.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek %s: %w", path, err)
	}
	fs.w = bufio.NewWriter(f)
	return fs, nil
}

// replay loads every complete record, returning the byte offset of the
// end of the last complete record.
func (fs *File) replay() (validOffset int64, err error) {
	if _, err := fs.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("store: seek %s: %w", fs.path, err)
	}
	rd := bufio.NewReader(fs.f)
	var offset int64
	for {
		line, err := rd.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: incomplete record, ignore.
			return offset, nil
		}
		if err != nil {
			return 0, fmt.Errorf("store: read %s: %w", fs.path, err)
		}
		var rec record
		if jerr := json.Unmarshal(line, &rec); jerr != nil {
			// Corrupt interior line: refuse to open rather than silently
			// dropping data.
			return 0, fmt.Errorf("store: corrupt record at offset %d in %s: %w", offset, fs.path, jerr)
		}
		switch rec.Kind {
		case "survey":
			if rec.Survey == nil {
				return 0, fmt.Errorf("store: survey record without payload at offset %d in %s", offset, fs.path)
			}
			if err := fs.mem.PutSurvey(rec.Survey); err != nil {
				return 0, fmt.Errorf("store: replay %s: %w", fs.path, err)
			}
		case "response":
			if rec.Response == nil {
				return 0, fmt.Errorf("store: response record without payload at offset %d in %s", offset, fs.path)
			}
			if err := fs.mem.AppendResponse(rec.Response); err != nil {
				return 0, fmt.Errorf("store: replay %s: %w", fs.path, err)
			}
		default:
			return 0, fmt.Errorf("store: unknown record kind %q in %s", rec.Kind, fs.path)
		}
		offset += int64(len(line))
	}
}

// append writes one record and flushes it to the OS.
func (fs *File) append(rec *record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshal: %w", err)
	}
	if _, err := fs.w.Write(b); err != nil {
		return fmt.Errorf("store: write %s: %w", fs.path, err)
	}
	if err := fs.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("store: write %s: %w", fs.path, err)
	}
	if err := fs.w.Flush(); err != nil {
		return fmt.Errorf("store: flush %s: %w", fs.path, err)
	}
	return nil
}

// PutSurvey implements Store: validate via the memory index first, then
// log.
func (fs *File) PutSurvey(s *survey.Survey) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.w == nil {
		return errors.New("store: use after close")
	}
	if err := fs.mem.PutSurvey(s); err != nil {
		return err
	}
	return fs.append(&record{Kind: "survey", Survey: s})
}

// Survey implements Store.
func (fs *File) Survey(id string) (*survey.Survey, error) { return fs.mem.Survey(id) }

// Surveys implements Store.
func (fs *File) Surveys() ([]*survey.Survey, error) { return fs.mem.Surveys() }

// AppendResponse implements Store.
func (fs *File) AppendResponse(r *survey.Response) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.w == nil {
		return errors.New("store: use after close")
	}
	if err := fs.mem.AppendResponse(r); err != nil {
		return err
	}
	return fs.append(&record{Kind: "response", Response: r})
}

// Responses implements Store.
func (fs *File) Responses(surveyID string) ([]survey.Response, error) {
	return fs.mem.Responses(surveyID)
}

// ResponseCount implements Store.
func (fs *File) ResponseCount(surveyID string) int { return fs.mem.ResponseCount(surveyID) }

// Close flushes and closes the log file.
func (fs *File) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.w == nil {
		return nil
	}
	flushErr := fs.w.Flush()
	fs.w = nil
	closeErr := fs.f.Close()
	if mErr := fs.mem.Close(); mErr != nil && flushErr == nil {
		flushErr = mErr
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

var _ Store = (*File)(nil)
