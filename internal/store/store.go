// Package store provides the persistence layer of the Loki backend: a
// Store interface with two implementations, an in-memory store for tests
// and simulations, and an append-only JSON-lines file store with replay
// recovery for durable deployments (the Django database of the paper's
// prototype).
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"loki/internal/survey"
)

// ErrNotFound is returned when a requested survey does not exist.
var ErrNotFound = errors.New("store: not found")

// ErrExists is returned when publishing a survey whose ID is taken.
var ErrExists = errors.New("store: already exists")

// Store persists surveys and their responses. Implementations must be
// safe for concurrent use.
//
// Every stored response carries a per-survey sequence number: the first
// response appended to a survey has seq 1, the next seq 2, and so on,
// with no gaps. Sequence numbers are stable across restarts (durable
// stores replay in append order), which makes them usable as resumption
// cursors for incremental readers.
type Store interface {
	// PutSurvey stores a survey definition. Overwriting an existing ID
	// is an error: accidental redefinition would silently change how
	// stored responses are interpreted. Deliberate redefinition goes
	// through ReplaceSurvey.
	PutSurvey(s *survey.Survey) error
	// ReplaceSurvey stores a survey definition, overwriting any existing
	// definition with the same ID — the republish operation. Responses
	// already stored stay in the log (they were validated against the
	// definition current at append time) and are reinterpreted under the
	// new definition from here on; derived state folded under the old
	// definition (live aggregates, checkpoints) must be invalidated by
	// the caller, which is what definition fingerprints are for.
	ReplaceSurvey(s *survey.Survey) error
	// Survey returns the survey with the given ID or ErrNotFound. The
	// returned survey is the caller's copy: mutating it never affects
	// the stored definition.
	Survey(id string) (*survey.Survey, error)
	// Surveys returns all stored surveys sorted by ID, as caller-owned
	// copies (see Survey).
	Surveys() ([]*survey.Survey, error)
	// AppendResponse validates the response against its survey and
	// appends it, assigning the survey's next sequence number.
	AppendResponse(r *survey.Response) error
	// ScanResponses streams the survey's responses with sequence numbers
	// strictly greater than fromSeq, in ascending seq order, calling fn
	// for each. fromSeq 0 scans from the beginning; passing the last seq
	// a previous scan delivered resumes exactly after it. The scan
	// observes a consistent snapshot: responses appended concurrently
	// with the scan are delivered by a later scan, never this one. The
	// *Response passed to fn aliases store-internal state to avoid
	// per-record copies; fn must not modify it or retain it after
	// returning. A non-nil error from fn aborts the scan and is returned
	// verbatim. Unknown surveys return ErrNotFound.
	ScanResponses(surveyID string, fromSeq uint64, fn func(seq uint64, r *survey.Response) error) error
	// Responses returns all responses for a survey in append order; it
	// returns ErrNotFound for unknown surveys. It is a materializing
	// convenience wrapper over ScanResponses.
	Responses(surveyID string) ([]survey.Response, error)
	// ResponseCount returns the number of stored responses for the
	// survey (0 for unknown surveys), i.e. its highest assigned seq.
	ResponseCount(surveyID string) int
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// SurveyVersion is one entry in a survey's republish history: the
// definition fingerprint and when it was published. PublishedUnixNano
// is zero for records persisted before publish timestamps existed.
type SurveyVersion struct {
	Fingerprint       string `json:"fingerprint"`
	PublishedUnixNano int64  `json:"published_unix_nano,omitempty"`
}

// Historian is the optional Store interface behind the admin surface's
// republish history: every definition fingerprint a survey has held,
// oldest first (the current definition last). Stores that replay a
// durable log reconstruct it from the log, so history survives
// restarts.
type Historian interface {
	SurveyHistory(surveyID string) []SurveyVersion
}

// BatchAppender is the optional Store interface for appending several
// responses in one durability round: a file-backed store writes every
// record and fsyncs once, so the fsync cost amortizes across the batch
// — the store-level half of the cluster transport's group batching. On
// success the returned slice holds, per response, the survey's response
// count right after that append (its assigned sequence number). On
// error, the returned prefix covers the responses that were durably
// appended before the failure; the rest were not.
type BatchAppender interface {
	AppendResponses(rs []survey.Response) ([]int, error)
}

// ScanSlice streams rs[fromSeq:] through fn with 1-based sequence
// numbers, the shared scan core for stores whose per-survey history is
// an append-only slice. Callers must pass a slice snapshot whose
// elements are never mutated in place (append-only histories qualify:
// growth writes beyond the captured length, never inside it), which
// makes the iteration race-free without holding the store's lock across
// fn callbacks.
func ScanSlice(rs []survey.Response, fromSeq uint64, fn func(seq uint64, r *survey.Response) error) error {
	for i := fromSeq; i < uint64(len(rs)); i++ {
		if err := fn(i+1, &rs[i]); err != nil {
			return err
		}
	}
	return nil
}

// CollectResponses materializes a survey's full response history through
// ScanResponses — the compatibility path for callers that still want a
// slice.
func CollectResponses(st Store, surveyID string) ([]survey.Response, error) {
	out := make([]survey.Response, 0, st.ResponseCount(surveyID))
	err := st.ScanResponses(surveyID, 0, func(_ uint64, r *survey.Response) error {
		out = append(out, *r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Mem is an in-memory Store. The zero value is not usable; call NewMem.
type Mem struct {
	mu        sync.RWMutex
	surveys   map[string]*survey.Survey
	responses map[string][]survey.Response
	history   map[string][]SurveyVersion
	closed    bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		surveys:   make(map[string]*survey.Survey),
		responses: make(map[string][]survey.Response),
		history:   make(map[string][]SurveyVersion),
	}
}

// recordVersionLocked appends a publish event to the survey's history
// unless the definition is unchanged (an idempotent republish is not a
// new version). Caller holds mu.
func (m *Mem) recordVersionLocked(s *survey.Survey, ts int64) {
	fp := s.Fingerprint()
	h := m.history[s.ID]
	if len(h) > 0 && h[len(h)-1].Fingerprint == fp {
		return
	}
	m.history[s.ID] = append(h, SurveyVersion{Fingerprint: fp, PublishedUnixNano: ts})
}

// setLastVersionTime overrides the newest history entry's timestamp —
// the hook a replaying durable store uses to restore logged publish
// times instead of replay times.
func (m *Mem) setLastVersionTime(surveyID string, ts int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.history[surveyID]; len(h) > 0 {
		h[len(h)-1].PublishedUnixNano = ts
	}
}

// SurveyHistory implements Historian.
func (m *Mem) SurveyHistory(surveyID string) []SurveyVersion {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]SurveyVersion(nil), m.history[surveyID]...)
}

// PutSurvey implements Store.
func (m *Mem) PutSurvey(s *survey.Survey) error {
	if err := s.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("store: use after close")
	}
	if _, dup := m.surveys[s.ID]; dup {
		return fmt.Errorf("store: survey %q: %w", s.ID, ErrExists)
	}
	m.surveys[s.ID] = s.Clone()
	m.recordVersionLocked(s, time.Now().UnixNano())
	return nil
}

// ReplaceSurvey implements Store: an upsert that overwrites any existing
// definition. Stored responses are untouched.
func (m *Mem) ReplaceSurvey(s *survey.Survey) error {
	if err := s.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("store: use after close")
	}
	m.surveys[s.ID] = s.Clone()
	m.recordVersionLocked(s, time.Now().UnixNano())
	return nil
}

// Survey implements Store. It returns a deep copy: handing out interior
// pointers would let callers mutate the "immutable" published
// definition through the shared Questions slice (the same
// copy-on-write discipline PutSurvey follows on the way in).
func (m *Mem) Survey(id string) (*survey.Survey, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.surveys[id]
	if !ok {
		return nil, fmt.Errorf("store: survey %q: %w", id, ErrNotFound)
	}
	return s.Clone(), nil
}

// Surveys implements Store (deep copies; see Survey).
func (m *Mem) Surveys() ([]*survey.Survey, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*survey.Survey, 0, len(m.surveys))
	for _, s := range m.surveys {
		out = append(out, s.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// AppendResponse implements Store.
func (m *Mem) AppendResponse(r *survey.Response) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("store: use after close")
	}
	s, ok := m.surveys[r.SurveyID]
	if !ok {
		return fmt.Errorf("store: response for unknown survey %q: %w", r.SurveyID, ErrNotFound)
	}
	if err := r.Validate(s); err != nil {
		return err
	}
	m.responses[r.SurveyID] = append(m.responses[r.SurveyID], *r)
	return nil
}

// AppendResponses implements BatchAppender: every response validates
// before any is applied, so a rejected batch changes nothing.
func (m *Mem) AppendResponses(rs []survey.Response) ([]int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("store: use after close")
	}
	for i := range rs {
		s, ok := m.surveys[rs[i].SurveyID]
		if !ok {
			return nil, fmt.Errorf("store: response for unknown survey %q: %w", rs[i].SurveyID, ErrNotFound)
		}
		if err := rs[i].Validate(s); err != nil {
			return nil, err
		}
	}
	counts := make([]int, len(rs))
	for i := range rs {
		m.responses[rs[i].SurveyID] = append(m.responses[rs[i].SurveyID], rs[i])
		counts[i] = len(m.responses[rs[i].SurveyID])
	}
	return counts, nil
}

// ScanResponses implements Store. The response history is an
// append-only slice, so the snapshot is just the slice header captured
// under the read lock; the iteration itself runs unlocked (see
// ScanSlice).
func (m *Mem) ScanResponses(surveyID string, fromSeq uint64, fn func(seq uint64, r *survey.Response) error) error {
	m.mu.RLock()
	if _, ok := m.surveys[surveyID]; !ok {
		m.mu.RUnlock()
		return fmt.Errorf("store: survey %q: %w", surveyID, ErrNotFound)
	}
	rs := m.responses[surveyID]
	m.mu.RUnlock()
	return ScanSlice(rs, fromSeq, fn)
}

// Responses implements Store as a wrapper over ScanResponses.
func (m *Mem) Responses(surveyID string) ([]survey.Response, error) {
	return CollectResponses(m, surveyID)
}

// ResponseCount implements Store.
func (m *Mem) ResponseCount(surveyID string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.responses[surveyID])
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

var _ Store = (*Mem)(nil)
