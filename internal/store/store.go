// Package store provides the persistence layer of the Loki backend: a
// Store interface with two implementations, an in-memory store for tests
// and simulations, and an append-only JSON-lines file store with replay
// recovery for durable deployments (the Django database of the paper's
// prototype).
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"loki/internal/survey"
)

// ErrNotFound is returned when a requested survey does not exist.
var ErrNotFound = errors.New("store: not found")

// ErrExists is returned when publishing a survey whose ID is taken.
var ErrExists = errors.New("store: already exists")

// Store persists surveys and their responses. Implementations must be
// safe for concurrent use.
type Store interface {
	// PutSurvey stores a survey definition. Overwriting an existing ID
	// is an error: published surveys are immutable so responses stay
	// interpretable.
	PutSurvey(s *survey.Survey) error
	// Survey returns the survey with the given ID or ErrNotFound.
	Survey(id string) (*survey.Survey, error)
	// Surveys returns all stored surveys sorted by ID.
	Surveys() ([]*survey.Survey, error)
	// AppendResponse validates the response against its survey and
	// appends it.
	AppendResponse(r *survey.Response) error
	// Responses returns all responses for a survey in append order; it
	// returns ErrNotFound for unknown surveys.
	Responses(surveyID string) ([]survey.Response, error)
	// ResponseCount returns the number of stored responses for the
	// survey (0 for unknown surveys).
	ResponseCount(surveyID string) int
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// Mem is an in-memory Store. The zero value is not usable; call NewMem.
type Mem struct {
	mu        sync.RWMutex
	surveys   map[string]*survey.Survey
	responses map[string][]survey.Response
	closed    bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		surveys:   make(map[string]*survey.Survey),
		responses: make(map[string][]survey.Response),
	}
}

// PutSurvey implements Store.
func (m *Mem) PutSurvey(s *survey.Survey) error {
	if err := s.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("store: use after close")
	}
	if _, dup := m.surveys[s.ID]; dup {
		return fmt.Errorf("store: survey %q: %w", s.ID, ErrExists)
	}
	cp := *s
	m.surveys[s.ID] = &cp
	return nil
}

// Survey implements Store.
func (m *Mem) Survey(id string) (*survey.Survey, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.surveys[id]
	if !ok {
		return nil, fmt.Errorf("store: survey %q: %w", id, ErrNotFound)
	}
	return s, nil
}

// Surveys implements Store.
func (m *Mem) Surveys() ([]*survey.Survey, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*survey.Survey, 0, len(m.surveys))
	for _, s := range m.surveys {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// AppendResponse implements Store.
func (m *Mem) AppendResponse(r *survey.Response) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("store: use after close")
	}
	s, ok := m.surveys[r.SurveyID]
	if !ok {
		return fmt.Errorf("store: response for unknown survey %q: %w", r.SurveyID, ErrNotFound)
	}
	if err := r.Validate(s); err != nil {
		return err
	}
	m.responses[r.SurveyID] = append(m.responses[r.SurveyID], *r)
	return nil
}

// Responses implements Store.
func (m *Mem) Responses(surveyID string) ([]survey.Response, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.surveys[surveyID]; !ok {
		return nil, fmt.Errorf("store: survey %q: %w", surveyID, ErrNotFound)
	}
	rs := m.responses[surveyID]
	out := make([]survey.Response, len(rs))
	copy(out, rs)
	return out, nil
}

// ResponseCount implements Store.
func (m *Mem) ResponseCount(surveyID string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.responses[surveyID])
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

var _ Store = (*Mem)(nil)
