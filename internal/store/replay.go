package store

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// ReplayLines streams every complete newline-terminated line of the file
// at path to fn — the shared crash-recovery primitive of every JSON-lines
// log in the system (the file store and the ingest WAL segments). A
// final line without a terminating newline is a torn tail from a crashed
// append: when tornOK is true the file is truncated back to the end of
// the last complete line (and the truncation fsynced); when false it is
// an error, for logs where only the newest file may legally be torn. fn
// returning an error aborts the replay — interior corruption is
// surfaced, never silently dropped.
func ReplayLines(path string, tornOK bool, fn func(line []byte) error) error {
	// Write access is only needed to truncate a torn tail; sealed logs
	// (tornOK=false) replay fine from read-only files or backups.
	flag := os.O_RDONLY
	if tornOK {
		flag = os.O_RDWR
	}
	f, err := os.OpenFile(path, flag, 0)
	if err != nil {
		return fmt.Errorf("store: open %s: %w", path, err)
	}
	defer f.Close()
	rd := bufio.NewReader(f)
	var valid int64
	for {
		line, err := rd.ReadBytes('\n')
		if err == io.EOF {
			if len(line) == 0 {
				return nil
			}
			// Torn tail: an append crashed before writing the newline.
			if !tornOK {
				return fmt.Errorf("store: torn record at offset %d in sealed log %s", valid, path)
			}
			if err := f.Truncate(valid); err != nil {
				return fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
			}
			return f.Sync()
		}
		if err != nil {
			return fmt.Errorf("store: read %s: %w", path, err)
		}
		if err := fn(line); err != nil {
			return fmt.Errorf("store: replay %s at offset %d: %w", path, valid, err)
		}
		valid += int64(len(line))
	}
}
