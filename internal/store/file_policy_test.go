package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"loki/internal/survey"
)

// TestFileSyncPolicies: every policy accepts appends, survives a clean
// close, and replays in full.
func TestFileSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts FileOptions
	}{
		{"always", FileOptions{Sync: SyncAlways}},
		{"interval", FileOptions{Sync: SyncInterval, Interval: 5 * time.Millisecond}},
		{"never", FileOptions{Sync: SyncNever}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "loki.jsonl")
			st, err := OpenFileWith(path, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.PutSurvey(sampleSurvey()); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := st.AppendResponse(sampleResponse("w")); err != nil {
					t.Fatal(err)
				}
			}
			if tc.opts.Sync == SyncInterval {
				// Let the flusher run at least once while appends exist.
				time.Sleep(3 * tc.opts.Interval)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2, err := OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			if n := st2.ResponseCount(survey.LecturerID); n != 10 {
				t.Fatalf("replay lost responses: %d, want 10", n)
			}
		})
	}
}

// TestFileSyncAlwaysDataOnDisk: under SyncAlways an acknowledged append
// is visible in the file before Close — the crash-durability contract.
// (A test cannot crash the kernel, but it can check nothing lingers in
// user-space buffers.)
func TestFileSyncAlwaysDataOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.PutSurvey(sampleSurvey()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResponse(sampleResponse("w1")); err != nil {
		t.Fatal(err)
	}
	// Without closing, a second reader must see both records.
	st2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if n := st2.ResponseCount(survey.LecturerID); n != 1 {
		t.Fatalf("acknowledged append not on disk: %d responses", n)
	}
}

// TestFileTornBatchTail: a crash can persist any byte prefix of the last
// append; every prefix must recover to exactly the acknowledged records
// before it.
func TestFileTornBatchTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutSurvey(sampleSurvey()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.AppendResponse(sampleResponse("w")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the start of the last record.
	lastStart := 0
	for i := 0; i < len(whole)-1; i++ {
		if whole[i] == '\n' {
			lastStart = i + 1
		}
	}
	for cut := lastStart + 1; cut < len(whole); cut++ {
		truncated := filepath.Join(t.TempDir(), "torn.jsonl")
		if err := os.WriteFile(truncated, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := OpenFile(truncated)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if n := st2.ResponseCount(survey.LecturerID); n != 2 {
			t.Fatalf("cut at %d: %d responses, want 2", cut, n)
		}
		st2.Close()
	}
}

// TestOpenFileWithRejectsUnknownPolicy guards the policy enum.
func TestOpenFileWithRejectsUnknownPolicy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	if _, err := OpenFileWith(path, FileOptions{Sync: SyncPolicy(42)}); err == nil {
		t.Fatal("unknown sync policy accepted")
	}
}

// TestFileFailedAppendIsStickyAndInvisible: after an append-path I/O
// failure the record must not be visible to reads (log-before-index) and
// the store must refuse further appends rather than risk acknowledging
// writes a post-error fsync can no longer guarantee.
func TestFileFailedAppendIsStickyAndInvisible(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutSurvey(sampleSurvey()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResponse(sampleResponse("w1")); err != nil {
		t.Fatal(err)
	}
	// Sabotage the fd so the next flush/fsync fails.
	if err := st.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResponse(sampleResponse("w2")); err == nil {
		t.Fatal("append on dead fd succeeded")
	}
	if n := st.ResponseCount(survey.LecturerID); n != 1 {
		t.Fatalf("failed append visible to reads: %d responses", n)
	}
	if err := st.AppendResponse(sampleResponse("w3")); err == nil {
		t.Fatal("append after sticky failure succeeded")
	}
	if err := st.Close(); err == nil {
		t.Fatal("close after sticky failure reported success")
	}
}
