package store

import (
	"path/filepath"
	"testing"

	"loki/internal/blockio"
	"loki/internal/survey"
)

// TestFileStoreBinaryCodec: the blockio-backed file store passes the
// same contract as the JSON one and survives reopen (resuming appends
// into the unsealed block log).
func TestFileStoreBinaryCodec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.blk")
	opts := FileOptions{Sync: SyncAlways, Codec: blockio.CodecBinary}
	st, err := OpenFileWith(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	storeTest(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if bin, err := blockio.Sniff(path); err != nil || !bin {
		t.Fatalf("binary-codec log did not sniff binary: %v %v", bin, err)
	}
	// Reopen twice: replay restores everything, and the resumed writer
	// keeps appending to the same file.
	for i := 0; i < 2; i++ {
		st2, err := OpenFileWith(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := 2 + i
		if got := st2.ResponseCount(survey.LecturerID); got != want {
			t.Fatalf("reopen %d: %d responses, want %d", i, got, want)
		}
		if err := st2.AppendResponse(sampleResponse("again")); err != nil {
			t.Fatal(err)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileStoreCodecSticky: an existing JSON log opened with the binary
// codec keeps its JSON format — the file's own magic wins, so a single
// log never mixes codecs.
func TestFileStoreCodecSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loki.jsonl")
	st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutSurvey(sampleSurvey()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendResponse(sampleResponse("w1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenFileWith(path, FileOptions{Sync: SyncAlways, Codec: blockio.CodecBinary})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.AppendResponse(sampleResponse("w2")); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if bin, err := blockio.Sniff(path); err != nil || bin {
		t.Fatalf("JSON log flipped codec mid-file: %v %v", bin, err)
	}
	st3, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := st3.ResponseCount(survey.LecturerID); got != 2 {
		t.Fatalf("after mixed-open appends: %d responses, want 2", got)
	}
}

func TestOpenFileWithRejectsUnknownCodec(t *testing.T) {
	if _, err := OpenFileWith(filepath.Join(t.TempDir(), "x"), FileOptions{Codec: "msgpack"}); err == nil {
		t.Fatal("unknown codec accepted")
	}
}
