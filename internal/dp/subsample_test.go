package dp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAmplifyBySampling(t *testing.T) {
	p := Params{Epsilon: 1, Delta: 1e-6}
	if _, err := AmplifyBySampling(p, 0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := AmplifyBySampling(p, 1.5); err == nil {
		t.Error("q>1 accepted")
	}
	if _, err := AmplifyBySampling(p, math.NaN()); err == nil {
		t.Error("q NaN accepted")
	}
	if _, err := AmplifyBySampling(Params{Epsilon: -1}, 0.5); err == nil {
		t.Error("invalid params accepted")
	}
	// q = 1 is the identity.
	got, err := AmplifyBySampling(p, 1)
	if err != nil || got != p {
		t.Errorf("q=1: %v, %v", got, err)
	}
	// Exact formula.
	got, err = AmplifyBySampling(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log1p(0.1 * (math.E - 1))
	if math.Abs(got.Epsilon-want) > 1e-12 {
		t.Errorf("ε' = %g, want %g", got.Epsilon, want)
	}
	if math.Abs(got.Delta-1e-7) > 1e-20 {
		t.Errorf("δ' = %g, want 1e-7", got.Delta)
	}
	// For small ε, ε' ≈ q·ε.
	small, _ := AmplifyBySampling(Params{Epsilon: 0.01, Delta: 0}, 0.2)
	if math.Abs(small.Epsilon-0.002) > 1e-4 {
		t.Errorf("small-ε amplification %g, want ≈ 0.002", small.Epsilon)
	}
}

func TestAmplifyMonotoneInQ(t *testing.T) {
	p := Params{Epsilon: 2, Delta: 1e-6}
	prev := 0.0
	for _, q := range []float64{0.01, 0.1, 0.3, 0.7, 1} {
		got, err := AmplifyBySampling(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Epsilon <= prev {
			t.Errorf("ε' not increasing at q=%g", q)
		}
		if got.Epsilon > p.Epsilon+1e-12 {
			t.Errorf("amplified ε %g above original %g", got.Epsilon, p.Epsilon)
		}
		prev = got.Epsilon
	}
}

func TestSamplingFractionFor(t *testing.T) {
	p := Params{Epsilon: 3, Delta: 1e-6}
	if _, err := SamplingFractionFor(p, 0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := SamplingFractionFor(Params{Epsilon: 0}, 1); err == nil {
		t.Error("invalid params accepted")
	}
	// Target above the mechanism's ε needs no subsampling.
	q, err := SamplingFractionFor(p, 5)
	if err != nil || q != 1 {
		t.Errorf("loose target q = %g, %v", q, err)
	}
}

func TestSamplingFractionRoundTrip(t *testing.T) {
	err := quick.Check(func(seedE, seedT uint64) bool {
		eps := 0.5 + float64(seedE%100)/10 // 0.5 .. 10.4
		target := 0.05 + float64(seedT%50)/100*eps
		if target >= eps {
			target = eps / 2
		}
		p := Params{Epsilon: eps, Delta: 1e-6}
		q, err := SamplingFractionFor(p, target)
		if err != nil {
			return false
		}
		amp, err := AmplifyBySampling(p, q)
		if err != nil {
			return false
		}
		return amp.Epsilon <= target*1.000001
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
