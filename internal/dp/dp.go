// Package dp implements the differential-privacy machinery behind Loki's
// privacy accounting: the Laplace and Gaussian mechanisms, calibration of
// noise to (ε, δ) targets, randomized response for countable domains,
// zero-concentrated differential privacy (zCDP) accounting, and sequential
// composition (basic, advanced, and zCDP).
//
// The CoNEXT'13 paper applies Gaussian noise at the user's device and
// mentions a differential-privacy framework "not discussed in this paper"
// for quantifying cumulative privacy loss. This package is that framework:
// it maps each noisy release to a privacy cost and lets a ledger (see
// internal/core) accumulate costs across surveys.
//
// Conventions: ε > 0 and 0 < δ < 1 throughout. Sensitivity Δ is the L1
// (Laplace) or L2 (Gaussian) distance between neighbouring inputs; for a
// single bounded rating in [1, hi] the sensitivity is hi-1.
package dp

import (
	"errors"
	"fmt"
	"math"

	"loki/internal/rng"
)

// Params is an (ε, δ) differential privacy guarantee. δ == 0 denotes pure
// ε-DP.
type Params struct {
	Epsilon float64
	Delta   float64
}

// Validate reports whether the parameters form a meaningful guarantee.
func (p Params) Validate() error {
	if p.Epsilon <= 0 || math.IsNaN(p.Epsilon) || math.IsInf(p.Epsilon, 0) {
		return fmt.Errorf("dp: epsilon must be positive and finite, got %g", p.Epsilon)
	}
	if p.Delta < 0 || p.Delta >= 1 || math.IsNaN(p.Delta) {
		return fmt.Errorf("dp: delta must be in [0, 1), got %g", p.Delta)
	}
	return nil
}

func (p Params) String() string {
	if p.Delta == 0 {
		return fmt.Sprintf("(ε=%.4g)-DP", p.Epsilon)
	}
	return fmt.Sprintf("(ε=%.4g, δ=%.3g)-DP", p.Epsilon, p.Delta)
}

// ---------------------------------------------------------------------------
// Laplace mechanism

// Laplace is the Laplace mechanism: adding Laplace(Δ/ε) noise to a query
// with L1-sensitivity Δ yields ε-DP.
type Laplace struct {
	Epsilon     float64
	Sensitivity float64
}

// NewLaplace returns a Laplace mechanism, validating its parameters.
func NewLaplace(epsilon, sensitivity float64) (*Laplace, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("dp: laplace epsilon must be positive, got %g", epsilon)
	}
	if sensitivity <= 0 {
		return nil, fmt.Errorf("dp: laplace sensitivity must be positive, got %g", sensitivity)
	}
	return &Laplace{Epsilon: epsilon, Sensitivity: sensitivity}, nil
}

// Scale returns the Laplace noise scale b = Δ/ε.
func (l *Laplace) Scale() float64 { return l.Sensitivity / l.Epsilon }

// Release returns value plus calibrated Laplace noise.
func (l *Laplace) Release(value float64, r *rng.RNG) float64 {
	return r.Laplace(value, l.Scale())
}

// Cost returns the privacy cost of one release.
func (l *Laplace) Cost() Params { return Params{Epsilon: l.Epsilon} }

// ---------------------------------------------------------------------------
// Gaussian mechanism

// Gaussian is the Gaussian mechanism with a fixed noise standard
// deviation. Its privacy cost depends on the sensitivity of the released
// value and the δ the analyst is willing to tolerate.
type Gaussian struct {
	Sigma float64
}

// NewGaussian returns a Gaussian mechanism with standard deviation sigma.
func NewGaussian(sigma float64) (*Gaussian, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("dp: gaussian sigma must be positive and finite, got %g", sigma)
	}
	return &Gaussian{Sigma: sigma}, nil
}

// Release returns value plus N(0, σ²) noise.
func (g *Gaussian) Release(value float64, r *rng.RNG) float64 {
	return r.Normal(value, g.Sigma)
}

// RhoZCDP returns the zCDP parameter ρ = Δ²/(2σ²) of one release with
// L2-sensitivity delta.
func (g *Gaussian) RhoZCDP(sensitivity float64) float64 {
	return sensitivity * sensitivity / (2 * g.Sigma * g.Sigma)
}

// Cost returns the (ε, δ) cost of one release with the given
// L2-sensitivity at the given δ, derived through zCDP conversion, which
// is tighter than the classical formula and valid for all ε.
func (g *Gaussian) Cost(sensitivity, delta float64) (Params, error) {
	if sensitivity <= 0 {
		return Params{}, fmt.Errorf("dp: sensitivity must be positive, got %g", sensitivity)
	}
	if delta <= 0 || delta >= 1 {
		return Params{}, fmt.Errorf("dp: delta must be in (0, 1), got %g", delta)
	}
	rho := g.RhoZCDP(sensitivity)
	return Params{Epsilon: EpsilonFromRho(rho, delta), Delta: delta}, nil
}

// SigmaForEpsilonDelta returns the classical calibration
// σ = Δ·sqrt(2 ln(1.25/δ))/ε. It is only valid for ε ≤ 1 but is the
// textbook formula, kept for comparison with AnalyticSigma.
func SigmaForEpsilonDelta(epsilon, delta, sensitivity float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("dp: epsilon must be positive, got %g", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("dp: delta must be in (0, 1), got %g", delta)
	}
	if sensitivity <= 0 {
		return 0, fmt.Errorf("dp: sensitivity must be positive, got %g", sensitivity)
	}
	return sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / epsilon, nil
}

// AnalyticSigma returns the smallest σ such that the Gaussian mechanism
// with L2-sensitivity Δ satisfies (ε, δ)-DP, computed with the analytic
// Gaussian mechanism characterization of Balle and Wang (ICML 2018):
//
//	δ(ε, σ) = Φ(Δ/(2σ) − εσ/Δ) − e^ε · Φ(−Δ/(2σ) − εσ/Δ)
//
// solved for σ by bisection. It is valid for every ε > 0 and strictly
// dominates the classical calibration.
func AnalyticSigma(epsilon, delta, sensitivity float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("dp: epsilon must be positive, got %g", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("dp: delta must be in (0, 1), got %g", delta)
	}
	if sensitivity <= 0 {
		return 0, fmt.Errorf("dp: sensitivity must be positive, got %g", sensitivity)
	}
	// δ(ε, σ) is strictly decreasing in σ; bracket then bisect.
	lo, hi := 1e-10, 1.0
	for GaussianDelta(epsilon, hi, sensitivity) > delta {
		hi *= 2
		if hi > 1e12 {
			return 0, errors.New("dp: analytic sigma bracket failed")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if GaussianDelta(epsilon, mid, sensitivity) > delta {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// GaussianDelta returns the exact δ achieved by the Gaussian mechanism
// with the given σ and L2-sensitivity at privacy level ε (Balle–Wang).
func GaussianDelta(epsilon, sigma, sensitivity float64) float64 {
	if sigma <= 0 {
		return 1
	}
	a := sensitivity / (2 * sigma)
	b := epsilon * sigma / sensitivity
	return normCDF(a-b) - math.Exp(epsilon)*normCDF(-a-b)
}

// EpsilonForSigma returns the smallest ε such that Gaussian noise with
// standard deviation σ and L2-sensitivity Δ is (ε, δ)-DP, by bisection on
// the exact Balle–Wang δ(ε).
func EpsilonForSigma(sigma, delta, sensitivity float64) (float64, error) {
	if sigma <= 0 {
		return 0, fmt.Errorf("dp: sigma must be positive, got %g", sigma)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("dp: delta must be in (0, 1), got %g", delta)
	}
	if sensitivity <= 0 {
		return 0, fmt.Errorf("dp: sensitivity must be positive, got %g", sensitivity)
	}
	// δ(ε) is strictly decreasing in ε.
	lo, hi := 0.0, 1.0
	for GaussianDelta(hi, sigma, sensitivity) > delta {
		hi *= 2
		if hi > 1e9 {
			return 0, errors.New("dp: epsilon bracket failed (sigma too small for delta)")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if GaussianDelta(mid, sigma, sensitivity) > delta {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ---------------------------------------------------------------------------
// zCDP accounting

// EpsilonFromRho converts a ρ-zCDP guarantee to (ε, δ)-DP at a chosen δ:
// ε = ρ + 2·sqrt(ρ·ln(1/δ)) (Bun & Steinke 2016, Prop. 1.3).
func EpsilonFromRho(rho, delta float64) float64 {
	if rho <= 0 {
		return 0
	}
	return rho + 2*math.Sqrt(rho*math.Log(1/delta))
}

// RhoFromSigma returns the zCDP cost ρ = Δ²/(2σ²) of a single Gaussian
// release.
func RhoFromSigma(sigma, sensitivity float64) float64 {
	if sigma <= 0 {
		return math.Inf(1)
	}
	return sensitivity * sensitivity / (2 * sigma * sigma)
}

// ---------------------------------------------------------------------------
// Randomized response

// RandomizedResponse is k-ary randomized response over a countable answer
// domain of size K: the true answer is kept with probability
// e^ε/(e^ε+K−1) and otherwise replaced by a uniformly random other
// answer. One invocation is ε-DP. This is the paper's "the method extends
// to any countable response set" mechanism for categorical questions.
type RandomizedResponse struct {
	Epsilon float64
	K       int
}

// NewRandomizedResponse validates and returns a k-ary randomized response
// mechanism.
func NewRandomizedResponse(epsilon float64, k int) (*RandomizedResponse, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("dp: randomized response epsilon must be positive, got %g", epsilon)
	}
	if k < 2 {
		return nil, fmt.Errorf("dp: randomized response needs a domain of at least 2, got %d", k)
	}
	return &RandomizedResponse{Epsilon: epsilon, K: k}, nil
}

// KeepProbability returns the probability of reporting the true answer.
func (rr *RandomizedResponse) KeepProbability() float64 {
	e := math.Exp(rr.Epsilon)
	return e / (e + float64(rr.K) - 1)
}

// Release perturbs the true answer index (in [0, K)).
func (rr *RandomizedResponse) Release(truth int, r *rng.RNG) (int, error) {
	if truth < 0 || truth >= rr.K {
		return 0, fmt.Errorf("dp: randomized response answer %d outside domain [0, %d)", truth, rr.K)
	}
	if r.Bernoulli(rr.KeepProbability()) {
		return truth, nil
	}
	// Uniform over the K-1 other answers.
	other := r.Intn(rr.K - 1)
	if other >= truth {
		other++
	}
	return other, nil
}

// Cost returns the privacy cost of one release.
func (rr *RandomizedResponse) Cost() Params { return Params{Epsilon: rr.Epsilon} }

// DebiasCounts converts observed randomized-response counts into unbiased
// estimates of the true counts. counts must have length K. The estimates
// may be negative for rare answers; callers that need a distribution
// should clamp and renormalize.
func (rr *RandomizedResponse) DebiasCounts(counts []int) ([]float64, error) {
	if len(counts) != rr.K {
		return nil, fmt.Errorf("dp: DebiasCounts got %d counts for domain size %d", len(counts), rr.K)
	}
	n := 0
	for _, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("dp: negative count %d", c)
		}
		n += c
	}
	p := rr.KeepProbability()
	q := (1 - p) / float64(rr.K-1)
	out := make([]float64, rr.K)
	for i, c := range counts {
		// E[observed_i] = p·true_i + q·(n − true_i)
		out[i] = (float64(c) - q*float64(n)) / (p - q)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Composition

// ComposeBasic returns the basic sequential composition of the given
// guarantees: epsilons and deltas add.
func ComposeBasic(costs []Params) Params {
	var out Params
	for _, c := range costs {
		out.Epsilon += c.Epsilon
		out.Delta += c.Delta
	}
	return out
}

// ComposeAdvanced returns the advanced composition bound (Dwork, Rothblum,
// Vadhan) for k releases each (ε, δ)-DP, with slack δ':
//
//	ε_total = ε·sqrt(2k·ln(1/δ')) + k·ε·(e^ε − 1)
//	δ_total = k·δ + δ'
//
// It returns an error if δ' is not in (0, 1).
func ComposeAdvanced(epsilon, delta float64, k int, deltaSlack float64) (Params, error) {
	if k < 0 {
		return Params{}, fmt.Errorf("dp: negative composition count %d", k)
	}
	if deltaSlack <= 0 || deltaSlack >= 1 {
		return Params{}, fmt.Errorf("dp: composition slack must be in (0, 1), got %g", deltaSlack)
	}
	if k == 0 {
		return Params{Delta: deltaSlack}, nil
	}
	kf := float64(k)
	eps := epsilon*math.Sqrt(2*kf*math.Log(1/deltaSlack)) + kf*epsilon*(math.Exp(epsilon)-1)
	return Params{Epsilon: eps, Delta: kf*delta + deltaSlack}, nil
}

// ComposeRho sums zCDP costs (zCDP composes additively) and converts the
// total to (ε, δ) at the chosen δ.
func ComposeRho(rhos []float64, delta float64) Params {
	total := 0.0
	for _, r := range rhos {
		total += r
	}
	return Params{Epsilon: EpsilonFromRho(total, delta), Delta: delta}
}
