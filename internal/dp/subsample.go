package dp

import (
	"fmt"
	"math"
)

// AmplifyBySampling returns the privacy guarantee of running an
// (ε, δ)-DP mechanism on a uniformly subsampled fraction q of the user
// base (privacy amplification by subsampling):
//
//	ε' = ln(1 + q·(e^ε − 1)),  δ' = q·δ
//
// For small ε the amplified ε' ≈ q·ε. A survey platform that invites
// only a random q-fraction of its users to each survey therefore spends
// roughly q times less of everyone's budget per posting — one of the
// levers for balancing cumulative loss across the user base.
func AmplifyBySampling(p Params, q float64) (Params, error) {
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	if q <= 0 || q > 1 || math.IsNaN(q) {
		return Params{}, fmt.Errorf("dp: sampling fraction %g outside (0, 1]", q)
	}
	if q == 1 {
		return p, nil
	}
	return Params{
		Epsilon: math.Log1p(q * (math.Exp(p.Epsilon) - 1)),
		Delta:   q * p.Delta,
	}, nil
}

// SamplingFractionFor returns the largest sampling fraction q such that
// the amplified guarantee stays within target ε. It inverts
// AmplifyBySampling: q = (e^target − 1)/(e^ε − 1), clamped to (0, 1].
func SamplingFractionFor(p Params, targetEpsilon float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if targetEpsilon <= 0 {
		return 0, fmt.Errorf("dp: target epsilon %g must be positive", targetEpsilon)
	}
	if targetEpsilon >= p.Epsilon {
		return 1, nil
	}
	q := math.Expm1(targetEpsilon) / math.Expm1(p.Epsilon)
	if q <= 0 {
		return 0, fmt.Errorf("dp: no positive sampling fraction reaches ε=%g from ε=%g", targetEpsilon, p.Epsilon)
	}
	if q > 1 {
		q = 1
	}
	return q, nil
}
