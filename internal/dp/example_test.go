package dp_test

import (
	"fmt"

	"loki/internal/dp"
)

// ExampleEpsilonForSigma shows what guarantee the paper's noise levels
// buy for a single 1..5 rating (sensitivity 4) at δ = 1e-6.
func ExampleEpsilonForSigma() {
	for _, sigma := range []float64{0.5, 1.0, 2.0} {
		eps, _ := dp.EpsilonForSigma(sigma, 1e-6, 4)
		fmt.Printf("σ=%.1f → ε=%.1f\n", sigma, eps)
	}
	// Output:
	// σ=0.5 → ε=69.2
	// σ=1.0 → ε=26.4
	// σ=2.0 → ε=11.0
}

// ExampleAccountant shows cumulative zCDP accounting over mixed
// mechanisms.
func ExampleAccountant() {
	acct := dp.NewAccountant()
	_ = acct.RecordGaussian(2, 4, "survey:lectures/question:q1") // ρ = 16/8 = 2
	_ = acct.RecordPure("rr", 1, "survey:lectures/question:q2")  // ρ = 0.5
	fmt.Printf("events: %d, total ρ: %.1f\n", acct.Len(), acct.TotalRho())
	total, _ := acct.TotalZCDP(1e-6)
	fmt.Printf("cumulative: %v\n", total)
	// Output:
	// events: 2, total ρ: 2.5
	// cumulative: (ε=14.25, δ=1e-06)-DP
}

// ExampleAmplifyBySampling shows privacy amplification when only a
// tenth of the user base is invited to a survey.
func ExampleAmplifyBySampling() {
	base := dp.Params{Epsilon: 1, Delta: 1e-6}
	amp, _ := dp.AmplifyBySampling(base, 0.1)
	fmt.Printf("ε %.2f → %.2f at q=0.1\n", base.Epsilon, amp.Epsilon)
	// Output:
	// ε 1.00 → 0.16 at q=0.1
}
