package dp

import (
	"math"
	"testing"
	"testing/quick"

	"loki/internal/rng"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p    Params
		ok   bool
		name string
	}{
		{Params{Epsilon: 1, Delta: 1e-6}, true, "typical"},
		{Params{Epsilon: 1}, true, "pure"},
		{Params{Epsilon: 0, Delta: 0.1}, false, "zero epsilon"},
		{Params{Epsilon: -1}, false, "negative epsilon"},
		{Params{Epsilon: math.Inf(1)}, false, "inf epsilon"},
		{Params{Epsilon: math.NaN()}, false, "nan epsilon"},
		{Params{Epsilon: 1, Delta: 1}, false, "delta 1"},
		{Params{Epsilon: 1, Delta: -0.1}, false, "negative delta"},
		{Params{Epsilon: 1, Delta: math.NaN()}, false, "nan delta"},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestParamsString(t *testing.T) {
	if got := (Params{Epsilon: 0.5}).String(); got != "(ε=0.5)-DP" {
		t.Errorf("pure string = %q", got)
	}
	if got := (Params{Epsilon: 1, Delta: 1e-6}).String(); got == "" {
		t.Error("approx string empty")
	}
}

func TestLaplaceMechanism(t *testing.T) {
	if _, err := NewLaplace(0, 1); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := NewLaplace(1, 0); err == nil {
		t.Error("sensitivity 0 accepted")
	}
	l, err := NewLaplace(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Scale(); got != 4 {
		t.Errorf("scale = %g, want 4", got)
	}
	if got := l.Cost(); got.Epsilon != 0.5 || got.Delta != 0 {
		t.Errorf("cost = %v", got)
	}
	// Release is unbiased.
	r := rng.New(1)
	const n = 100_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += l.Release(10, r)
	}
	if got := sum / n; math.Abs(got-10) > 0.1 {
		t.Errorf("release mean = %.3f, want 10", got)
	}
}

func TestNewGaussianErrors(t *testing.T) {
	for _, sigma := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewGaussian(sigma); err == nil {
			t.Errorf("NewGaussian(%g) accepted", sigma)
		}
	}
}

func TestGaussianRho(t *testing.T) {
	g, err := NewGaussian(2)
	if err != nil {
		t.Fatal(err)
	}
	// ρ = Δ²/(2σ²) = 1/(2·4) = 0.125 for Δ=1.
	if got := g.RhoZCDP(1); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("rho = %g, want 0.125", got)
	}
}

func TestGaussianCostErrors(t *testing.T) {
	g, _ := NewGaussian(1)
	if _, err := g.Cost(0, 1e-6); err == nil {
		t.Error("sensitivity 0 accepted")
	}
	if _, err := g.Cost(1, 0); err == nil {
		t.Error("delta 0 accepted")
	}
	if _, err := g.Cost(1, 1); err == nil {
		t.Error("delta 1 accepted")
	}
	p, err := g.Cost(1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if p.Epsilon <= 0 || p.Delta != 1e-6 {
		t.Errorf("cost = %v", p)
	}
}

func TestClassicSigma(t *testing.T) {
	// σ = Δ·sqrt(2 ln(1.25/δ))/ε
	sigma, err := SigmaForEpsilonDelta(1, 1e-5, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * math.Log(1.25e5))
	if math.Abs(sigma-want) > 1e-9 {
		t.Errorf("sigma = %g, want %g", sigma, want)
	}
	for _, c := range []struct{ e, d, s float64 }{{0, 0.1, 1}, {1, 0, 1}, {1, 1, 1}, {1, 0.1, 0}} {
		if _, err := SigmaForEpsilonDelta(c.e, c.d, c.s); err == nil {
			t.Errorf("SigmaForEpsilonDelta(%g,%g,%g) accepted", c.e, c.d, c.s)
		}
	}
}

func TestAnalyticSigmaAchievesDelta(t *testing.T) {
	for _, eps := range []float64{0.1, 0.5, 1, 2, 5} {
		for _, delta := range []float64{1e-3, 1e-6} {
			sigma, err := AnalyticSigma(eps, delta, 1)
			if err != nil {
				t.Fatalf("AnalyticSigma(%g, %g): %v", eps, delta, err)
			}
			got := GaussianDelta(eps, sigma, 1)
			if got > delta*1.001 {
				t.Errorf("ε=%g δ=%g: achieved δ %g exceeds target", eps, delta, got)
			}
			// The analytic calibration never needs more noise than the
			// classical formula (valid for ε ≤ 1).
			if eps <= 1 {
				classic, _ := SigmaForEpsilonDelta(eps, delta, 1)
				if sigma > classic+1e-9 {
					t.Errorf("ε=%g δ=%g: analytic σ %g above classic %g", eps, delta, sigma, classic)
				}
			}
		}
	}
}

func TestAnalyticSigmaErrors(t *testing.T) {
	for _, c := range []struct{ e, d, s float64 }{{0, 0.1, 1}, {1, 0, 1}, {1, 1, 1}, {1, 0.1, 0}} {
		if _, err := AnalyticSigma(c.e, c.d, c.s); err == nil {
			t.Errorf("AnalyticSigma(%g,%g,%g) accepted", c.e, c.d, c.s)
		}
	}
}

func TestGaussianDeltaMonotone(t *testing.T) {
	// δ decreases in σ and in ε.
	if !(GaussianDelta(1, 0.5, 1) > GaussianDelta(1, 1.0, 1)) {
		t.Error("delta not decreasing in sigma")
	}
	if !(GaussianDelta(0.5, 1, 1) > GaussianDelta(2, 1, 1)) {
		t.Error("delta not decreasing in epsilon")
	}
	if got := GaussianDelta(1, 0, 1); got != 1 {
		t.Errorf("sigma 0 delta = %g, want 1", got)
	}
}

func TestEpsilonForSigmaRoundTrip(t *testing.T) {
	err := quick.Check(func(seedE, seedD uint64) bool {
		eps := 0.1 + float64(seedE%500)/100 // 0.1 .. 5.1
		delta := math.Pow(10, -(3 + float64(seedD%6)))
		sigma, err := AnalyticSigma(eps, delta, 1)
		if err != nil {
			return false
		}
		back, err := EpsilonForSigma(sigma, delta, 1)
		if err != nil {
			return false
		}
		return math.Abs(back-eps) < 0.01*eps+1e-6
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonForSigmaErrors(t *testing.T) {
	for _, c := range []struct{ s, d, sens float64 }{{0, 0.1, 1}, {1, 0, 1}, {1, 1, 1}, {1, 0.1, 0}} {
		if _, err := EpsilonForSigma(c.s, c.d, c.sens); err == nil {
			t.Errorf("EpsilonForSigma(%g,%g,%g) accepted", c.s, c.d, c.sens)
		}
	}
}

func TestZCDPConversions(t *testing.T) {
	if got := EpsilonFromRho(0, 1e-6); got != 0 {
		t.Errorf("EpsilonFromRho(0) = %g", got)
	}
	// ε = ρ + 2·sqrt(ρ ln(1/δ))
	rho, delta := 0.5, 1e-6
	want := rho + 2*math.Sqrt(rho*math.Log(1/delta))
	if got := EpsilonFromRho(rho, delta); math.Abs(got-want) > 1e-12 {
		t.Errorf("EpsilonFromRho = %g, want %g", got, want)
	}
	if got := RhoFromSigma(0, 1); !math.IsInf(got, 1) {
		t.Errorf("RhoFromSigma(0) = %g, want +Inf", got)
	}
	if got := RhoFromSigma(2, 4); math.Abs(got-2) > 1e-12 {
		t.Errorf("RhoFromSigma(2,4) = %g, want 2", got)
	}
}

func TestRandomizedResponse(t *testing.T) {
	if _, err := NewRandomizedResponse(0, 4); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := NewRandomizedResponse(1, 1); err == nil {
		t.Error("domain 1 accepted")
	}
	rr, err := NewRandomizedResponse(math.Log(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Binary RR with ε=ln3 keeps with probability 3/4.
	if got := rr.KeepProbability(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("keep prob = %g, want 0.75", got)
	}
	if got := rr.Cost(); got.Epsilon != math.Log(3) {
		t.Errorf("cost = %v", got)
	}
	if _, err := rr.Release(-1, rng.New(1)); err == nil {
		t.Error("negative answer accepted")
	}
	if _, err := rr.Release(2, rng.New(1)); err == nil {
		t.Error("out-of-domain answer accepted")
	}

	r := rng.New(2)
	const n = 100_000
	kept := 0
	for i := 0; i < n; i++ {
		out, err := rr.Release(1, r)
		if err != nil {
			t.Fatal(err)
		}
		if out == 1 {
			kept++
		}
	}
	if got := float64(kept) / n; math.Abs(got-0.75) > 0.01 {
		t.Errorf("empirical keep rate = %.4f", got)
	}
}

func TestRandomizedResponseKeepMonotone(t *testing.T) {
	prev := 0.0
	for _, eps := range []float64{0.1, 0.5, 1, 2, 4} {
		rr, err := NewRandomizedResponse(eps, 5)
		if err != nil {
			t.Fatal(err)
		}
		if p := rr.KeepProbability(); p <= prev {
			t.Errorf("keep probability not increasing at ε=%g", eps)
		} else {
			prev = p
		}
	}
}

func TestDebiasCounts(t *testing.T) {
	rr, _ := NewRandomizedResponse(1.0, 3)
	if _, err := rr.DebiasCounts([]int{1, 2}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := rr.DebiasCounts([]int{1, -1, 2}); err == nil {
		t.Error("negative count accepted")
	}

	// Generate counts from known truth and check the estimate recovers it.
	r := rng.New(3)
	truth := []int{7000, 2000, 1000}
	counts := make([]int, 3)
	for ans, m := range truth {
		for i := 0; i < m; i++ {
			out, err := rr.Release(ans, r)
			if err != nil {
				t.Fatal(err)
			}
			counts[out]++
		}
	}
	est, err := rr.DebiasCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range truth {
		if math.Abs(est[i]-float64(want)) > 300 {
			t.Errorf("debias[%d] = %.0f, want ~%d", i, est[i], want)
		}
	}
}

func TestComposeBasic(t *testing.T) {
	got := ComposeBasic([]Params{{Epsilon: 1, Delta: 1e-6}, {Epsilon: 0.5, Delta: 1e-7}})
	if math.Abs(got.Epsilon-1.5) > 1e-12 || math.Abs(got.Delta-1.1e-6) > 1e-12 {
		t.Errorf("basic composition = %v", got)
	}
	if got := ComposeBasic(nil); got.Epsilon != 0 || got.Delta != 0 {
		t.Errorf("empty composition = %v", got)
	}
}

func TestComposeAdvanced(t *testing.T) {
	if _, err := ComposeAdvanced(1, 0, -1, 1e-6); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := ComposeAdvanced(1, 0, 5, 0); err == nil {
		t.Error("slack 0 accepted")
	}
	zero, err := ComposeAdvanced(1, 0, 0, 1e-6)
	if err != nil || zero.Epsilon != 0 {
		t.Errorf("k=0: %v, %v", zero, err)
	}
	// For small ε and large k, advanced beats basic.
	eps, k := 0.1, 100
	adv, err := ComposeAdvanced(eps, 0, k, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	basic := eps * float64(k)
	if adv.Epsilon >= basic {
		t.Errorf("advanced %g not below basic %g for small ε", adv.Epsilon, basic)
	}
}

func TestComposeRho(t *testing.T) {
	got := ComposeRho([]float64{0.1, 0.2, 0.3}, 1e-6)
	want := EpsilonFromRho(0.6, 1e-6)
	if math.Abs(got.Epsilon-want) > 1e-12 {
		t.Errorf("rho composition = %v, want ε=%g", got, want)
	}
}
