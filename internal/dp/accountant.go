package dp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Event is one recorded noisy release: which mechanism produced it and at
// what cost. Exactly one of the cost representations is primary: Gaussian
// releases carry Rho (zCDP) and a Sigma/Sensitivity pair; pure-ε releases
// carry Epsilon.
type Event struct {
	// Mechanism is a short label ("gaussian", "laplace", "rr") for
	// reporting; it does not affect accounting.
	Mechanism string
	// Epsilon is the pure-DP cost for Laplace/randomized-response events;
	// zero for Gaussian events.
	Epsilon float64
	// Rho is the zCDP cost for Gaussian events; zero otherwise.
	Rho float64
	// Sigma and Sensitivity record how a Gaussian event was produced, for
	// reporting.
	Sigma, Sensitivity float64
	// Tag is free-form context, typically "survey:<id>/question:<id>".
	Tag string
}

// Accountant tracks cumulative privacy loss over a sequence of events and
// answers "what is my total (ε, δ) so far?" under several composition
// rules. It is safe for concurrent use.
//
// The accountant is an odometer, not a filter: it never blocks a release.
// Budget enforcement lives in core.Ledger, which consults the accountant.
type Accountant struct {
	mu     sync.Mutex
	events []Event
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant { return &Accountant{} }

// Record appends an event. It returns an error if the event carries no
// cost or a negative cost.
func (a *Accountant) Record(e Event) error {
	if e.Epsilon < 0 || e.Rho < 0 || math.IsNaN(e.Epsilon) || math.IsNaN(e.Rho) {
		return fmt.Errorf("dp: event has negative or NaN cost (ε=%g, ρ=%g)", e.Epsilon, e.Rho)
	}
	if e.Epsilon == 0 && e.Rho == 0 {
		return fmt.Errorf("dp: event %q carries no privacy cost", e.Tag)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events = append(a.events, e)
	return nil
}

// RecordGaussian records a Gaussian release with the given σ and
// L2-sensitivity.
func (a *Accountant) RecordGaussian(sigma, sensitivity float64, tag string) error {
	if sigma <= 0 {
		return fmt.Errorf("dp: gaussian event needs sigma > 0, got %g", sigma)
	}
	if sensitivity <= 0 {
		return fmt.Errorf("dp: gaussian event needs sensitivity > 0, got %g", sensitivity)
	}
	return a.Record(Event{
		Mechanism:   "gaussian",
		Rho:         RhoFromSigma(sigma, sensitivity),
		Sigma:       sigma,
		Sensitivity: sensitivity,
		Tag:         tag,
	})
}

// RecordPure records a pure-ε release (Laplace or randomized response).
func (a *Accountant) RecordPure(mechanism string, epsilon float64, tag string) error {
	if epsilon <= 0 {
		return fmt.Errorf("dp: pure event needs epsilon > 0, got %g", epsilon)
	}
	return a.Record(Event{Mechanism: mechanism, Epsilon: epsilon, Tag: tag})
}

// Len returns the number of recorded events.
func (a *Accountant) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.events)
}

// Events returns a copy of the recorded events in order.
func (a *Accountant) Events() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Event, len(a.events))
	copy(out, a.events)
	return out
}

// Reset discards all recorded events.
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events = nil
}

// TotalRho returns the summed zCDP cost of all events. Pure-ε events are
// converted through ρ = ε²/2 (an ε-DP mechanism is ε²/2-zCDP).
func (a *Accountant) TotalRho() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := 0.0
	for _, e := range a.events {
		total += e.Rho
		if e.Epsilon > 0 {
			total += e.Epsilon * e.Epsilon / 2
		}
	}
	return total
}

// TotalBasic returns the basic-composition total: pure epsilons add, and
// each Gaussian event is first converted to (ε, δ_i)-DP with
// δ_i = delta / numGaussianEvents so the δs also add up to delta.
func (a *Accountant) TotalBasic(delta float64) (Params, error) {
	if delta <= 0 || delta >= 1 {
		return Params{}, fmt.Errorf("dp: delta must be in (0, 1), got %g", delta)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	nGauss := 0
	for _, e := range a.events {
		if e.Rho > 0 {
			nGauss++
		}
	}
	var total Params
	for _, e := range a.events {
		if e.Epsilon > 0 {
			total.Epsilon += e.Epsilon
		}
		if e.Rho > 0 {
			di := delta / float64(nGauss)
			total.Epsilon += EpsilonFromRho(e.Rho, di)
			total.Delta += di
		}
	}
	return total, nil
}

// TotalZCDP returns the zCDP-composition total converted to (ε, δ)-DP.
// This is the accountant's tightest bound and the one core.Ledger uses.
func (a *Accountant) TotalZCDP(delta float64) (Params, error) {
	if delta <= 0 || delta >= 1 {
		return Params{}, fmt.Errorf("dp: delta must be in (0, 1), got %g", delta)
	}
	return Params{Epsilon: EpsilonFromRho(a.TotalRho(), delta), Delta: delta}, nil
}

// ByTag aggregates total ρ per event tag prefix (up to the first '/'),
// which groups per-survey costs when tags follow the
// "survey:<id>/question:<id>" convention. The result is sorted by tag.
func (a *Accountant) ByTag() []TagCost {
	a.mu.Lock()
	defer a.mu.Unlock()
	agg := make(map[string]*TagCost)
	for _, e := range a.events {
		key := e.Tag
		if i := strings.IndexByte(key, '/'); i >= 0 {
			key = key[:i]
		}
		tc, ok := agg[key]
		if !ok {
			tc = &TagCost{Tag: key}
			agg[key] = tc
		}
		tc.Events++
		tc.Rho += e.Rho
		if e.Epsilon > 0 {
			tc.Rho += e.Epsilon * e.Epsilon / 2
		}
	}
	out := make([]TagCost, 0, len(agg))
	for _, tc := range agg {
		out = append(out, *tc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// TagCost is the aggregate cost of all events sharing a tag prefix.
type TagCost struct {
	Tag    string
	Events int
	Rho    float64
}
