package dp

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestAccountantRecordValidation(t *testing.T) {
	a := NewAccountant()
	if err := a.Record(Event{}); err == nil {
		t.Error("zero-cost event accepted")
	}
	if err := a.Record(Event{Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if err := a.Record(Event{Rho: math.NaN()}); err == nil {
		t.Error("NaN rho accepted")
	}
	if err := a.RecordGaussian(0, 1, "t"); err == nil {
		t.Error("sigma 0 accepted")
	}
	if err := a.RecordGaussian(1, 0, "t"); err == nil {
		t.Error("sensitivity 0 accepted")
	}
	if err := a.RecordPure("laplace", 0, "t"); err == nil {
		t.Error("pure epsilon 0 accepted")
	}
	if a.Len() != 0 {
		t.Fatalf("invalid events were recorded: len=%d", a.Len())
	}
}

func TestAccountantTotals(t *testing.T) {
	a := NewAccountant()
	// Gaussian: ρ = 1/(2·4) = 0.125.
	if err := a.RecordGaussian(2, 1, "survey:s1/question:q1"); err != nil {
		t.Fatal(err)
	}
	// Pure ε=1 → ρ = 0.5.
	if err := a.RecordPure("rr", 1, "survey:s1/question:q2"); err != nil {
		t.Fatal(err)
	}
	if got := a.TotalRho(); math.Abs(got-0.625) > 1e-12 {
		t.Errorf("total rho = %g, want 0.625", got)
	}
	z, err := a.TotalZCDP(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if want := EpsilonFromRho(0.625, 1e-6); math.Abs(z.Epsilon-want) > 1e-12 {
		t.Errorf("zCDP total = %g, want %g", z.Epsilon, want)
	}
	if _, err := a.TotalZCDP(0); err == nil {
		t.Error("delta 0 accepted")
	}
	if _, err := a.TotalBasic(1); err == nil {
		t.Error("delta 1 accepted")
	}
	b, err := a.TotalBasic(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Basic: pure ε adds directly, the one Gaussian event gets all of δ.
	want := 1 + EpsilonFromRho(0.125, 1e-6)
	if math.Abs(b.Epsilon-want) > 1e-9 || math.Abs(b.Delta-1e-6) > 1e-15 {
		t.Errorf("basic total = %v, want ε=%g δ=1e-6", b, want)
	}
}

func TestAccountantBasicSplitsDelta(t *testing.T) {
	a := NewAccountant()
	for i := 0; i < 4; i++ {
		if err := a.RecordGaussian(1, 1, "t"); err != nil {
			t.Fatal(err)
		}
	}
	b, err := a.TotalBasic(4e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Delta-4e-6) > 1e-15 {
		t.Errorf("delta total = %g, want 4e-6", b.Delta)
	}
	perEvent := EpsilonFromRho(0.5, 1e-6)
	if math.Abs(b.Epsilon-4*perEvent) > 1e-9 {
		t.Errorf("epsilon total = %g, want %g", b.Epsilon, 4*perEvent)
	}
}

func TestAccountantZCDPTighterThanBasic(t *testing.T) {
	a := NewAccountant()
	for i := 0; i < 25; i++ {
		if err := a.RecordGaussian(1, 1, "t"); err != nil {
			t.Fatal(err)
		}
	}
	z, _ := a.TotalZCDP(1e-6)
	b, _ := a.TotalBasic(1e-6)
	if z.Epsilon >= b.Epsilon {
		t.Errorf("zCDP %g not tighter than basic %g over 25 events", z.Epsilon, b.Epsilon)
	}
}

func TestAccountantByTag(t *testing.T) {
	a := NewAccountant()
	mustRecord := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustRecord(a.RecordGaussian(1, 1, "survey:a/question:q1"))
	mustRecord(a.RecordGaussian(1, 1, "survey:a/question:q2"))
	mustRecord(a.RecordGaussian(1, 1, "survey:b/question:q1"))
	mustRecord(a.RecordPure("rr", 1, "survey:b/question:q2"))

	tags := a.ByTag()
	if len(tags) != 2 {
		t.Fatalf("got %d tags, want 2: %v", len(tags), tags)
	}
	if tags[0].Tag != "survey:a" || tags[0].Events != 2 {
		t.Errorf("tag[0] = %+v", tags[0])
	}
	if tags[1].Tag != "survey:b" || tags[1].Events != 2 {
		t.Errorf("tag[1] = %+v", tags[1])
	}
	if math.Abs(tags[1].Rho-(0.5+0.5)) > 1e-12 {
		t.Errorf("survey:b rho = %g", tags[1].Rho)
	}
}

func TestAccountantEventsCopyAndReset(t *testing.T) {
	a := NewAccountant()
	if err := a.RecordPure("rr", 1, "x"); err != nil {
		t.Fatal(err)
	}
	evs := a.Events()
	evs[0].Epsilon = 99
	if a.Events()[0].Epsilon == 99 {
		t.Error("Events leaked internal state")
	}
	a.Reset()
	if a.Len() != 0 || a.TotalRho() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestAccountantConcurrency(t *testing.T) {
	a := NewAccountant()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := a.RecordGaussian(1, 1, fmt.Sprintf("survey:%d", g)); err != nil {
					t.Error(err)
					return
				}
				_ = a.TotalRho()
			}
		}(g)
	}
	wg.Wait()
	if a.Len() != 800 {
		t.Fatalf("recorded %d events, want 800", a.Len())
	}
	if got := a.TotalRho(); math.Abs(got-400) > 1e-9 {
		t.Fatalf("total rho = %g, want 400", got)
	}
}
