package ingest

import (
	"fmt"
	"testing"
	"time"

	"loki/internal/survey"
)

// TestScanResponses checks cursor-based scans against the sharded
// store: per-survey seq numbering, resumption, and stability across a
// reopen (the recovery path rebuilds the same order from snapshot + WAL
// tail).
func TestScanResponses(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testConfig(4))
	const surveys, each = 3, 20
	for i := 0; i < surveys; i++ {
		if err := s.PutSurvey(benchSurvey(i)); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < each; j++ {
		for i := 0; i < surveys; i++ {
			r := benchResponse(benchSurvey(i).ID, fmt.Sprintf("s%d-w%03d", i, j))
			if err := s.AppendResponse(r); err != nil {
				t.Fatal(err)
			}
		}
	}

	checkScan := func(st *Sharded, i int, fromSeq uint64) {
		t.Helper()
		want := fromSeq
		err := st.ScanResponses(benchSurvey(i).ID, fromSeq, func(seq uint64, r *survey.Response) error {
			want++
			if seq != want {
				return fmt.Errorf("seq %d, want %d", seq, want)
			}
			if wantW := fmt.Sprintf("s%d-w%03d", i, seq-1); r.WorkerID != wantW {
				return fmt.Errorf("seq %d holds %q, want %q (append order lost)", seq, r.WorkerID, wantW)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if want != each {
			t.Fatalf("scan from %d covered up to seq %d, want %d", fromSeq, want, each)
		}
	}
	for i := 0; i < surveys; i++ {
		checkScan(s, i, 0)
		checkScan(s, i, 7)
	}
	if err := s.ScanResponses("ghost", 0, func(uint64, *survey.Response) error { return nil }); err == nil {
		t.Fatal("unknown survey scan accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Cursors must survive recovery.
	s2 := openTest(t, dir, testConfig(4))
	defer s2.Close()
	for i := 0; i < surveys; i++ {
		checkScan(s2, i, 0)
		checkScan(s2, i, 13)
	}
}

// TestIdleCompaction checks that a shard with a quiet WAL tail gets
// compacted by the idle timer: without new commits, the sealed-segment
// count drops to zero, a snapshot appears, and recovery still serves
// every response.
func TestIdleCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.IdleCompact = 25 * time.Millisecond
	s := openTest(t, dir, cfg)
	sv := benchSurvey(0)
	if err := s.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	const n = 5
	for j := 0; j < n; j++ {
		if err := s.AppendResponse(benchResponse(sv.ID, fmt.Sprintf("w%03d", j))); err != nil {
			t.Fatal(err)
		}
	}
	// The appends fit one segment, so rotation-driven compaction never
	// fires; only the idle timer can fold the tail.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Snapshots == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle shard never compacted: stats %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	stats := s.ShardStats()
	if len(stats) != 1 {
		t.Fatalf("shard stats = %d entries", len(stats))
	}
	sh := stats[0]
	if sh.IdleCompactions == 0 {
		t.Errorf("idle compactions = 0 after idle snapshot")
	}
	if sh.SealedSegments != 0 {
		t.Errorf("sealed segments = %d after compaction, want 0", sh.SealedSegments)
	}
	if sh.SnapshotSeq == 0 {
		t.Errorf("snapshot seq = 0 after compaction")
	}
	if sh.LastCompaction.IsZero() {
		t.Errorf("last compaction time unset")
	}

	// Reads are unaffected, and appends keep working after the fold.
	if got := s.ResponseCount(sv.ID); got != n {
		t.Fatalf("response count after idle compaction = %d, want %d", got, n)
	}
	if err := s.AppendResponse(benchResponse(sv.ID, "late")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery from snapshot + fresh tail serves everything.
	s2 := openTest(t, dir, cfg)
	defer s2.Close()
	if got := s2.ResponseCount(sv.ID); got != n+1 {
		t.Fatalf("response count after reopen = %d, want %d", got, n+1)
	}
}

// TestShouldIdleCompact pins the write-amplification guard: a tiny
// unfolded tail must not trigger a rewrite of a much larger snapshot.
func TestShouldIdleCompact(t *testing.T) {
	cases := []struct {
		tail, snap int64
		want       bool
	}{
		{0, 0, false},           // nothing to fold
		{0, 1 << 20, false},     // nothing to fold despite a snapshot
		{1, 0, true},            // no snapshot yet: always fold
		{100, 500 << 20, false}, // trickle into a huge history: skip
		{64 << 20, 500 << 20, true},
		{1 << 20, 8 << 20, true}, // exactly 1/8: fold
		{1<<20 - 1, 8 << 20, false},
	}
	for _, c := range cases {
		if got := shouldIdleCompact(c.tail, c.snap); got != c.want {
			t.Errorf("shouldIdleCompact(%d, %d) = %v, want %v", c.tail, c.snap, got, c.want)
		}
	}
}

// TestSurveyReturnsCopy mirrors the store package's interior-pointer
// regression test for the sharded store.
func TestSurveyReturnsCopy(t *testing.T) {
	s := openTest(t, t.TempDir(), testConfig(1))
	defer s.Close()
	if err := s.PutSurvey(sampleSurvey()); err != nil {
		t.Fatal(err)
	}
	got, err := s.Survey(survey.LecturerID)
	if err != nil {
		t.Fatal(err)
	}
	got.Questions[0].Text = "defaced"
	again, _ := s.Survey(survey.LecturerID)
	if again.Questions[0].Text == "defaced" {
		t.Fatal("Survey leaked interior pointers into the stored definition")
	}
	all, err := s.Surveys()
	if err != nil || len(all) != 1 {
		t.Fatalf("Surveys: %d, %v", len(all), err)
	}
	all[0].Questions[0].ScaleMax = 99
	again, _ = s.Survey(survey.LecturerID)
	if again.Questions[0].ScaleMax == 99 {
		t.Fatal("Surveys leaked interior pointers into the stored definition")
	}
}
