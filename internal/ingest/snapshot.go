package ingest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"loki/internal/blockio"
	"loki/internal/store"
	"loki/internal/survey"
)

// snapHeader is the first record of a snapshot file. The remaining Count
// records are one JSON response each, in index (append) order per survey.
// Under the binary codec the same records ride in sealed blockio blocks;
// replay sniffs the format per file.
type snapHeader struct {
	Format int    `json:"format"`
	Shard  int    `json:"shard"`
	Covers uint64 `json:"covers"` // every segment with seq <= Covers is folded in
	Count  int    `json:"count"`
}

const snapFormat = 1

// snapshot folds every sealed segment into one snapshot file and deletes
// the segments it covers, so recovery replays only the WAL tail. It runs
// on the committer goroutine immediately after a rotation, which makes
// the cut exact: the index holds precisely the contents of the sealed
// segments, the new active segment is still empty. The snapshot is made
// crash-atomic by writing to a temp file, fsyncing, then renaming.
func (sh *shard) snapshot() error {
	covers := sh.completed[len(sh.completed)-1]
	// The committer is the index's only writer, so reading it here is
	// race-free; concurrent readers hold mu.RLock and never write.
	count := 0
	for _, rs := range sh.index {
		count += len(rs)
	}
	tmp := filepath.Join(sh.dir, snapName(covers)+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: create snapshot %s: %w", tmp, err)
	}
	werr := sh.writeSnapshot(f, snapHeader{Format: snapFormat, Shard: sh.id, Covers: covers, Count: count})
	var written int64
	if werr == nil {
		var fi os.FileInfo
		if fi, werr = f.Stat(); werr == nil {
			written = fi.Size()
		}
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("ingest: write snapshot %s: %w", tmp, werr)
	}
	final := filepath.Join(sh.dir, snapName(covers))
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("ingest: publish snapshot %s: %w", final, err)
	}
	if err := syncDir(sh.dir); err != nil {
		return err
	}
	// The snapshot is durable; everything it covers is now garbage.
	for _, seq := range sh.completed {
		if err := os.Remove(filepath.Join(sh.dir, segName(seq))); err != nil {
			return fmt.Errorf("ingest: drop compacted segment: %w", err)
		}
	}
	if sh.snapSeq > 0 {
		if err := os.Remove(filepath.Join(sh.dir, snapName(sh.snapSeq))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("ingest: drop superseded snapshot: %w", err)
		}
	}
	if err := syncDir(sh.dir); err != nil {
		return err
	}
	sh.completed = sh.completed[:0]
	sh.snapSeq = covers
	sh.tailBytes = sh.segBytes // only the active segment remains unfolded
	sh.snapBytes = written
	sh.snapshots.Add(1)
	sh.sealedSegs.Store(0)
	sh.snapSeqSeen.Store(covers)
	sh.lastCompactNano.Store(time.Now().UnixNano())
	return nil
}

// writeSnapshot encodes the header plus every indexed response into f
// using the shard's configured codec. Binary snapshots are sealed: they
// are immutable once published, so they always carry a block index and
// replay with strict (non-repairing) semantics.
func (sh *shard) writeSnapshot(f *os.File, hdr snapHeader) error {
	if sh.cfg.Codec == blockio.CodecBinary {
		w, err := blockio.NewWriter(f, 1)
		if err != nil {
			return err
		}
		rec, err := json.Marshal(&hdr)
		if err != nil {
			return err
		}
		if _, err := w.Append(rec); err != nil {
			return err
		}
		for _, rs := range sh.index {
			for i := range rs {
				if rec, err = json.Marshal(&rs[i]); err != nil {
					return err
				}
				if _, err := w.Append(rec); err != nil {
					return err
				}
			}
		}
		return w.Seal() // flushes and fsyncs; the caller closes f
	}
	w := bufio.NewWriterSize(f, 1<<16)
	enc := json.NewEncoder(w) // Encode appends the newline separator
	if err := enc.Encode(&hdr); err != nil {
		return err
	}
	for _, rs := range sh.index {
		for i := range rs {
			if err := enc.Encode(&rs[i]); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

// loadSnapshot restores the index from the newest snapshot, if any, and
// removes superseded older ones.
func (sh *shard) loadSnapshot() error {
	seqs, err := listSeqs(sh.dir, snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	if len(seqs) == 0 {
		return nil
	}
	latest := seqs[len(seqs)-1]
	for _, seq := range seqs[:len(seqs)-1] {
		if err := os.Remove(filepath.Join(sh.dir, snapName(seq))); err != nil {
			return fmt.Errorf("ingest: drop superseded snapshot: %w", err)
		}
	}
	path := filepath.Join(sh.dir, snapName(latest))
	var hdr *snapHeader
	loaded := 0
	apply := func(line []byte) error {
		if hdr == nil {
			hdr = new(snapHeader)
			if err := json.Unmarshal(line, hdr); err != nil {
				return fmt.Errorf("corrupt snapshot header: %w", err)
			}
			if hdr.Format != snapFormat {
				return fmt.Errorf("snapshot format %d not supported", hdr.Format)
			}
			if hdr.Covers != latest {
				return fmt.Errorf("snapshot header covers segment %d but file name says %d", hdr.Covers, latest)
			}
			return nil
		}
		var r survey.Response
		if err := json.Unmarshal(line, &r); err != nil {
			return fmt.Errorf("corrupt snapshot record: %w", err)
		}
		sh.index[r.SurveyID] = append(sh.index[r.SurveyID], r)
		loaded++
		return nil
	}
	bin, err := blockio.Sniff(path)
	if err != nil {
		return fmt.Errorf("ingest: sniff snapshot %s: %w", path, err)
	}
	if bin {
		_, err = blockio.Replay(path, false, func(_ uint64, payload []byte) error {
			return apply(payload)
		})
	} else {
		err = store.ReplayLines(path, false, apply)
	}
	if err != nil {
		return err
	}
	if hdr == nil || loaded != hdr.Count {
		got := 0
		if hdr != nil {
			got = hdr.Count
		}
		return fmt.Errorf("ingest: snapshot %s holds %d records, header says %d", path, loaded, got)
	}
	sh.snapSeq = latest
	sh.snapSeqSeen.Store(latest)
	if fi, err := os.Stat(path); err == nil {
		sh.snapBytes = fi.Size()
	}
	return nil
}
