package ingest

import (
	"testing"

	"loki/internal/survey"
)

// TestReplaceSurveyReplay: the meta log replays last-wins per survey ID,
// so a republished definition survives a restart while the response
// stream (and its sequence numbers) stays intact.
func TestReplaceSurveyReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	v1 := &survey.Survey{
		ID:    "repub",
		Title: "Republish test",
		Questions: []survey.Question{
			{ID: "q0", Text: "pick", Kind: survey.MultipleChoice, Options: []string{"a", "b"}},
		},
		RewardCents: 1,
	}
	if err := s.PutSurvey(v1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r := &survey.Response{
			SurveyID: "repub", WorkerID: "w",
			Answers: []survey.Answer{survey.ChoiceAnswer("q0", i%2)},
		}
		if err := s.AppendResponse(r); err != nil {
			t.Fatal(err)
		}
	}
	v2 := v1.Clone()
	v2.Title = "Republish test v2"
	v2.Questions[0].Options = []string{"a", "b", "c"}
	if err := s.ReplaceSurvey(v2); err != nil {
		t.Fatal(err)
	}
	if sv, _ := s.Survey("repub"); len(sv.Questions[0].Options) != 3 {
		t.Fatalf("definition not replaced: %+v", sv.Questions[0].Options)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Config{Shards: 2})
	if err != nil {
		t.Fatalf("reopen after republish failed: %v", err)
	}
	defer s2.Close()
	sv, err := s2.Survey("repub")
	if err != nil {
		t.Fatal(err)
	}
	if sv.Title != "Republish test v2" || len(sv.Questions[0].Options) != 3 {
		t.Fatalf("replayed definition = %q / %v, want v2", sv.Title, sv.Questions[0].Options)
	}
	if got := s2.ResponseCount("repub"); got != 3 {
		t.Fatalf("replayed %d responses, want 3", got)
	}
}
