package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segmented write-ahead-log file naming. A shard directory holds
//
//	wal-<seq>.seg    append-only JSON-lines segments, seq strictly increasing
//	snap-<seq>.snap  a snapshot covering every segment with seq' <= seq
//
// where <seq> is a zero-padded hexadecimal sequence number so
// lexicographic order equals numeric order.
const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

func segName(seq uint64) string  { return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix) }
func snapName(seq uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix) }

// parseSeq extracts the sequence number from a segment or snapshot file
// name with the given prefix and suffix.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexPart := name[len(prefix) : len(name)-len(suffix)]
	if len(hexPart) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSeqs returns the sorted sequence numbers of every file in dir
// matching prefix/suffix.
func listSeqs(dir, prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: list %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// removeTmp deletes leftover temporary files (a crash mid-snapshot leaves
// a *.tmp behind; it was never visible, so it is garbage).
func removeTmp(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("ingest: list %s: %w", dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), tmpSuffix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("ingest: remove stale %s: %w", e.Name(), err)
			}
		}
	}
	return nil
}

// syncDir fsyncs a directory so entry creations/renames/removals are
// durable. File fsync alone does not persist the directory entry.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ingest: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ingest: sync dir %s: %w", dir, err)
	}
	return nil
}

// Segment and snapshot replay dispatch per file on blockio.Sniff:
// binary files go through blockio.Replay, JSON-lines files through
// store.ReplayLines. Both share the same crash-recovery contract
// (complete-record streaming with torn-tail truncation on the active
// tail, strict verification for sealed/immutable files).
