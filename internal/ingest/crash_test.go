package ingest

// Crash-recovery tests: simulate a machine dying mid-append by hand-
// mutilating WAL files, then assert that reopening truncates the torn
// tail cleanly and preserves every acknowledged response.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// tornBytes is the prefix of a record as a crashed append would leave it:
// valid JSON start, no terminating newline.
var tornBytes = []byte(`{"survey_id":"ingest-test-00","worker_id":"TORN","answe`)

// appendBytes appends raw bytes to a file, as a crashed kernel flush
// would have.
func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// newestSegment returns the path of the highest-sequence segment of a
// shard directory.
func newestSegment(t *testing.T, shardDir string) string {
	t.Helper()
	segs, err := listSeqs(shardDir, segPrefix, segSuffix)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments in %s: %v, %v", shardDir, segs, err)
	}
	return filepath.Join(shardDir, segName(segs[len(segs)-1]))
}

// populate opens a store, publishes one survey and appends n acknowledged
// responses, then closes it.
func populate(t *testing.T, dir string, cfg Config, n int) {
	t.Helper()
	s := openTest(t, dir, cfg)
	sv := benchSurvey(0)
	if err := s.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if err := s.AppendResponse(benchResponse(sv.ID, fmt.Sprintf("w%04d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailTruncated: a torn record at the end of the newest segment
// is dropped on reopen; every acknowledged response survives; the store
// accepts new appends afterwards.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	const acked = 25
	populate(t, dir, cfg, acked)

	shardDir := filepath.Join(dir, shardDirName(0))
	seg := newestSegment(t, shardDir)
	before, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	appendBytes(t, seg, tornBytes)

	s := openTest(t, dir, cfg)
	sv := benchSurvey(0)
	rs, err := s.Responses(sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != acked {
		t.Fatalf("%d responses after torn-tail recovery, want %d", len(rs), acked)
	}
	for _, r := range rs {
		if r.WorkerID == "TORN" {
			t.Fatal("torn record replayed")
		}
	}
	if err := s.AppendResponse(benchResponse(sv.ID, "after-crash")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The mutilated segment itself was physically truncated.
	after, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("torn segment is %d bytes, want %d (truncated back)", after.Size(), before.Size())
	}
}

// TestTornTailAcrossReopens: repeated crash/recover cycles never lose
// acknowledged data (a torn tail after each reopen).
func TestTornTailAcrossReopens(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2)
	s := openTest(t, dir, cfg)
	sv := benchSurvey(0)
	if err := s.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	total := 0
	for cycle := 0; cycle < 4; cycle++ {
		for k := 0; k < 10; k++ {
			if err := s.AppendResponse(benchResponse(sv.ID, fmt.Sprintf("c%d-w%d", cycle, k))); err != nil {
				t.Fatal(err)
			}
			total++
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		shardDir := filepath.Join(dir, shardDirName(s.shardFor(sv.ID).id))
		appendBytes(t, newestSegment(t, shardDir), tornBytes)
		s = openTest(t, dir, cfg)
		if n := s.ResponseCount(sv.ID); n != total {
			t.Fatalf("cycle %d: %d responses, want %d", cycle, n, total)
		}
	}
	s.Close()
}

// TestTornMetaTailTruncated: a torn survey record in meta.jsonl is
// dropped on reopen and the surviving surveys replay.
func TestTornMetaTailTruncated(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(2)
	s := openTest(t, dir, cfg)
	if err := s.PutSurvey(benchSurvey(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSurvey(benchSurvey(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	appendBytes(t, filepath.Join(dir, metaName), []byte(`{"id":"torn-sur`))

	s2 := openTest(t, dir, cfg)
	defer s2.Close()
	svs, err := s2.Surveys()
	if err != nil || len(svs) != 2 {
		t.Fatalf("surveys after torn meta recovery: %d, %v", len(svs), err)
	}
	// And publishing continues to work after truncation.
	if err := s2.PutSurvey(benchSurvey(2)); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailInSealedSegmentRefused: only the newest segment may be
// torn; a torn interior segment means real corruption and must refuse to
// open rather than silently drop records.
func TestTornTailInSealedSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.CompactSegments = 1000 // keep every segment around
	populate(t, dir, cfg, 200) // enough to roll several 4 KiB segments

	shardDir := filepath.Join(dir, shardDirName(0))
	segs, err := listSeqs(shardDir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("only %d segments; need >= 2 for an interior tear", len(segs))
	}
	appendBytes(t, filepath.Join(shardDir, segName(segs[0])), tornBytes)
	if _, err := Open(dir, cfg); err == nil {
		t.Fatal("opened a store with a torn sealed segment")
	}
}

// TestCrashDuringSnapshotIgnoresTmp: a crash mid-snapshot leaves a *.tmp
// file; reopen must discard it and recover from segments alone.
func TestCrashDuringSnapshotIgnoresTmp(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.CompactSegments = 1000 // no real snapshot
	const acked = 30
	populate(t, dir, cfg, acked)

	shardDir := filepath.Join(dir, shardDirName(0))
	tmp := filepath.Join(shardDir, snapName(99)+tmpSuffix)
	if err := os.WriteFile(tmp, []byte(`{"format":1,"covers":99,"count":9999}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, cfg)
	defer s.Close()
	if n := s.ResponseCount(benchSurvey(0).ID); n != acked {
		t.Fatalf("%d responses, want %d", n, acked)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot tmp not removed: %v", err)
	}
}
