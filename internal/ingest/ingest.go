// Package ingest is the sharded, durable ingestion subsystem of the Loki
// backend: a store.Store implementation built for sustained concurrent
// response submission at platform scale.
//
// Responses are hash-partitioned by survey ID across N shards. Each
// shard owns a segmented write-ahead log and a single committer
// goroutine: concurrent AppendResponse callers coalesce into one group
// commit — one buffered write and one fsync per batch — so the fsync
// cost amortizes across every caller waiting in the same commit window,
// and independent shards commit in parallel. Segments rotate at a
// bounded size; once enough sealed segments accumulate, the shard folds
// them into a snapshot and deletes them, so recovery replays only the
// WAL tail instead of the whole history.
//
// Durability guarantee: when AppendResponse or PutSurvey returns nil,
// the record has been written and fsynced (and, for files just created,
// the directory entry synced). A crash at any point loses no
// acknowledged record; a torn trailing record from an unacknowledged
// append is detected and truncated on reopen.
//
// Surveys are low-volume metadata and live in a single shared JSON-lines
// log (meta.jsonl) synced on every publish.
//
// Layout of an ingest directory:
//
//	dir/
//	  meta.jsonl            survey definitions
//	  shard-000/
//	    wal-<seq>.seg       response segments (blockio binary blocks, or JSON lines)
//	    snap-<seq>.snap     snapshot covering segments <= seq (same codecs)
//	  shard-001/
//	    ...
//
// Segments and snapshots are written in the configured codec (binary by
// default) but replayed by sniffing each file's magic, so a directory
// written under the old JSON-lines codec — or a mix, mid-migration —
// reopens in place and converts as new files are written.
package ingest

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/blockio"
	"loki/internal/store"
	"loki/internal/survey"
)

// Config tunes the sharded ingest store. The zero value selects sane
// defaults via Open.
type Config struct {
	// Shards is the number of hash partitions (default 8). Submission
	// throughput scales with shards until fsync bandwidth saturates.
	Shards int
	// CommitInterval is how long a shard's committer waits for
	// latecomers after the first request of a batch (default 0). Zero
	// commits as soon as the committer is free: batching then arises
	// naturally from requests queueing while the previous fsync runs. A
	// positive window trades latency for fewer, larger commits.
	CommitInterval time.Duration
	// MaxBatch bounds how many appends one group commit may carry
	// (default 512).
	MaxBatch int
	// SegmentBytes is the rotation threshold for WAL segments (default
	// 16 MiB). A segment may exceed it by at most one commit batch.
	SegmentBytes int64
	// CompactSegments is how many sealed segments accumulate before the
	// shard folds them into a snapshot (default 4).
	CompactSegments int
	// IdleCompact is how long a shard may sit idle (no commits) before
	// its committer folds the WAL tail — active segment included — into
	// a snapshot. Without it, a shard that goes quiet never compacts,
	// since ordinary compaction only runs on segment rotation. Default
	// 1 minute; negative disables idle compaction.
	IdleCompact time.Duration
	// Codec selects the encoding of new segments and snapshots:
	// blockio.CodecBinary (the default) writes compressed, checksummed,
	// block-indexed files; blockio.CodecJSON writes readable JSON lines.
	// Replay autodetects per file, so the codec may change between opens
	// of the same directory.
	Codec string
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 512
	}
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 16 << 20
	}
	if c.CompactSegments == 0 {
		c.CompactSegments = 4
	}
	if c.IdleCompact == 0 {
		c.IdleCompact = time.Minute
	}
	if c.Codec == "" {
		c.Codec = blockio.CodecBinary
	}
	return c
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Shards < 1 || c.Shards > 1024 {
		return fmt.Errorf("ingest: shard count %d outside [1, 1024]", c.Shards)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("ingest: max batch %d < 1", c.MaxBatch)
	}
	if c.SegmentBytes < 4096 {
		return fmt.Errorf("ingest: segment size %d < 4096", c.SegmentBytes)
	}
	if c.CompactSegments < 1 {
		return fmt.Errorf("ingest: compact threshold %d < 1", c.CompactSegments)
	}
	if c.CommitInterval < 0 {
		return fmt.Errorf("ingest: negative commit interval %v", c.CommitInterval)
	}
	if !blockio.ValidCodec(c.Codec) {
		return fmt.Errorf("ingest: unknown codec %q", c.Codec)
	}
	return nil
}

// Sharded is the sharded ingest store. It implements store.Store, so the
// server, platform and public API can adopt it wherever a store.Mem or
// store.File is used today.
type Sharded struct {
	cfg Config
	dir string

	// mu guards the survey index and the meta log writer.
	mu      sync.RWMutex
	surveys map[string]*survey.Survey
	// history is each survey's publish-event log (definition
	// fingerprints with timestamps), rebuilt from the meta log on open.
	history map[string][]store.SurveyVersion
	metaF   *os.File
	metaW   *bufio.Writer
	// metaErr is the first meta-log I/O failure, sticky like the shard
	// commit path: after a failed write/fsync the buffered tail may
	// surface in a later flush, so retrying a publish could duplicate
	// the record on disk and poison the next replay.
	metaErr error

	shards []*shard

	closed atomic.Bool
	// closeGate is read-held for the duration of every append; Close
	// write-acquires it after setting closed, which both waits out
	// in-flight appends and is safe against appends racing the close
	// (unlike a WaitGroup, whose Add may not race Wait at zero).
	closeGate sync.RWMutex
}

const (
	metaName   = "meta.jsonl"
	layoutName = "layout.json"
)

// layout is the store's on-disk identity, written atomically (tmp +
// rename) before any shard directory exists. It — not the set of
// shard-NNN directories, which a crashed first Open can leave partial —
// is what fixes the shard count.
type layout struct {
	Format int `json:"format"`
	Shards int `json:"shards"`
}

// Open recovers (or initialises) a sharded ingest store rooted at dir.
// The shard count is fixed at first open: reopening an existing directory
// with a different cfg.Shards is an error, because responses are placed
// by hash modulo the shard count.
func Open(dir string, cfg Config) (*Sharded, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: mkdir %s: %w", dir, err)
	}
	if err := checkLayout(dir, cfg.Shards); err != nil {
		return nil, err
	}
	s := &Sharded{
		cfg:     cfg,
		dir:     dir,
		surveys: make(map[string]*survey.Survey),
		history: make(map[string][]store.SurveyVersion),
	}
	if err := s.openMeta(); err != nil {
		return nil, err
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh, err := openShard(i, filepath.Join(dir, shardDirName(i)), cfg)
		if err != nil {
			s.metaF.Close()
			for _, prev := range s.shards[:i] {
				prev.close()
			}
			return nil, err
		}
		s.shards[i] = sh
	}
	return s, nil
}

func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// checkLayout validates the store's shard count against the layout
// marker, writing the marker first on a fresh store. Because the marker
// is published atomically before any shard directory is created, a crash
// mid-Open never leaves a directory that refuses its own shard count.
func checkLayout(dir string, shards int) error {
	path := filepath.Join(dir, layoutName)
	b, err := os.ReadFile(path)
	switch {
	case err == nil:
		var l layout
		if jerr := json.Unmarshal(b, &l); jerr != nil {
			return fmt.Errorf("ingest: corrupt %s: %w", path, jerr)
		}
		if l.Format != 1 {
			return fmt.Errorf("ingest: %s format %d not supported by this version", path, l.Format)
		}
		if l.Shards != shards {
			return fmt.Errorf("ingest: %s holds %d shards, config wants %d (shard count is fixed at first open)",
				dir, l.Shards, shards)
		}
		return nil
	case errors.Is(err, os.ErrNotExist):
		b, err := json.Marshal(layout{Format: 1, Shards: shards})
		if err != nil {
			return fmt.Errorf("ingest: marshal layout: %w", err)
		}
		tmp := path + tmpSuffix
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("ingest: create %s: %w", tmp, err)
		}
		_, werr := f.Write(append(b, '\n'))
		if werr == nil {
			werr = f.Sync() // the rename must never publish torn content
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			os.Remove(tmp)
			return fmt.Errorf("ingest: write %s: %w", tmp, werr)
		}
		if err := os.Rename(tmp, path); err != nil {
			return fmt.Errorf("ingest: publish %s: %w", path, err)
		}
		return syncDir(dir)
	default:
		return fmt.Errorf("ingest: read %s: %w", path, err)
	}
}

// metaRecord is one meta-log line: the survey definition with the
// publish timestamp alongside. Logs written before the timestamp
// existed are plain survey JSON; they decode with a zero timestamp.
type metaRecord struct {
	survey.Survey
	PublishedUnixNano int64 `json:"published_unix_nano,omitempty"`
}

// openMeta replays the survey log (truncating a torn tail) and positions
// it for appends.
func (s *Sharded) openMeta() error {
	path := filepath.Join(s.dir, metaName)
	err := store.ReplayLines(path, true, func(line []byte) error {
		var rec metaRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("corrupt survey record: %w", err)
		}
		if rec.ID == "" {
			return errors.New("survey record without ID")
		}
		// Later records supersede earlier ones: a republish appends the
		// new definition and replay applies the log in order.
		sv := rec.Survey
		s.surveys[sv.ID] = &sv
		s.recordVersion(&sv, rec.PublishedUnixNano)
		return nil
	})
	if errors.Is(err, os.ErrNotExist) {
		err = nil
	}
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: open %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("ingest: seek %s: %w", path, err)
	}
	s.metaF = f
	s.metaW = bufio.NewWriter(f)
	return nil
}

// shardFor places a survey's response stream on a shard. All responses
// of one survey land on the same shard, which preserves per-survey
// append order.
func (s *Sharded) shardFor(surveyID string) *shard {
	h := fnv.New32a()
	io.WriteString(h, surveyID)
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// PutSurvey implements store.Store. Surveys are immutable once
// published; the definition is fsynced before the call returns.
func (s *Sharded) PutSurvey(sv *survey.Survey) error {
	if err := sv.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return errors.New("ingest: use after close")
	}
	if s.metaErr != nil {
		return s.metaErr
	}
	if _, dup := s.surveys[sv.ID]; dup {
		return fmt.Errorf("ingest: survey %q: %w", sv.ID, store.ErrExists)
	}
	return s.appendMeta(sv)
}

// ReplaceSurvey implements store.Store: the republish path. The new
// definition is appended to the meta log (replay is last-wins per
// survey ID) and fsynced before it becomes visible.
func (s *Sharded) ReplaceSurvey(sv *survey.Survey) error {
	if err := sv.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return errors.New("ingest: use after close")
	}
	if s.metaErr != nil {
		return s.metaErr
	}
	return s.appendMeta(sv)
}

// recordVersion appends a publish event to the survey's history unless
// the definition is unchanged (an idempotent republish is not a new
// version). The caller holds mu (or is single-threaded replay).
func (s *Sharded) recordVersion(sv *survey.Survey, ts int64) {
	fp := sv.Fingerprint()
	h := s.history[sv.ID]
	if len(h) > 0 && h[len(h)-1].Fingerprint == fp {
		return
	}
	s.history[sv.ID] = append(h, store.SurveyVersion{Fingerprint: fp, PublishedUnixNano: ts})
}

// SurveyHistory implements store.Historian: publish events replayed
// from the meta log, with their logged timestamps.
func (s *Sharded) SurveyHistory(surveyID string) []store.SurveyVersion {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]store.SurveyVersion(nil), s.history[surveyID]...)
}

// appendMeta durably appends one survey definition to meta.jsonl and
// publishes it to the index. The caller holds mu and has cleared the
// closed/metaErr gates.
func (s *Sharded) appendMeta(sv *survey.Survey) error {
	cp := *sv
	ts := time.Now().UnixNano()
	b, err := json.Marshal(&metaRecord{Survey: cp, PublishedUnixNano: ts})
	if err != nil {
		return fmt.Errorf("ingest: marshal survey: %w", err)
	}
	werr := func() error {
		if _, err := s.metaW.Write(append(b, '\n')); err != nil {
			return fmt.Errorf("ingest: write %s: %w", metaName, err)
		}
		if err := s.metaW.Flush(); err != nil {
			return fmt.Errorf("ingest: flush %s: %w", metaName, err)
		}
		if err := s.metaF.Sync(); err != nil {
			return fmt.Errorf("ingest: sync %s: %w", metaName, err)
		}
		return nil
	}()
	if werr != nil {
		s.metaErr = werr
		return werr
	}
	s.surveys[cp.ID] = &cp
	s.recordVersion(&cp, ts)
	return nil
}

// Survey implements store.Store. It returns a deep copy so callers
// cannot mutate the published definition through interior pointers.
func (s *Sharded) Survey(id string) (*survey.Survey, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sv, ok := s.surveys[id]
	if !ok {
		return nil, fmt.Errorf("ingest: survey %q: %w", id, store.ErrNotFound)
	}
	return sv.Clone(), nil
}

// Surveys implements store.Store (deep copies; see Survey).
func (s *Sharded) Surveys() ([]*survey.Survey, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*survey.Survey, 0, len(s.surveys))
	for _, sv := range s.surveys {
		out = append(out, sv.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// AppendResponse implements store.Store. It validates against the
// survey, then hands the record to the owning shard's committer and
// blocks until the group commit that carries it is durable.
func (s *Sharded) AppendResponse(r *survey.Response) error {
	s.closeGate.RLock()
	defer s.closeGate.RUnlock()
	if s.closed.Load() {
		return errors.New("ingest: use after close")
	}
	s.mu.RLock()
	sv, ok := s.surveys[r.SurveyID]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("ingest: response for unknown survey %q: %w", r.SurveyID, store.ErrNotFound)
	}
	if err := r.Validate(sv); err != nil {
		return err
	}
	cp := *r
	b, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("ingest: marshal response: %w", err)
	}
	req := &appendReq{resp: &cp, payload: b, errc: make(chan error, 1)}
	s.shardFor(cp.SurveyID).reqCh <- req
	return <-req.errc
}

// ScanResponses implements store.Store. A survey's whole stream lives
// on one shard (placement is by survey ID), so per-survey sequence
// numbers are simply positions in that shard's append-ordered history —
// stable across restarts because recovery replays snapshot + WAL tail
// in the original order.
func (s *Sharded) ScanResponses(surveyID string, fromSeq uint64, fn func(seq uint64, r *survey.Response) error) error {
	s.mu.RLock()
	_, ok := s.surveys[surveyID]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("ingest: survey %q: %w", surveyID, store.ErrNotFound)
	}
	return s.shardFor(surveyID).scan(surveyID, fromSeq, fn)
}

// Responses implements store.Store as a wrapper over ScanResponses.
func (s *Sharded) Responses(surveyID string) ([]survey.Response, error) {
	return store.CollectResponses(s, surveyID)
}

// ResponseCount implements store.Store.
func (s *Sharded) ResponseCount(surveyID string) int {
	return s.shardFor(surveyID).responseCount(surveyID)
}

// Close implements store.Store: it refuses new appends, waits for
// in-flight ones to commit, stops every committer and seals the logs.
func (s *Sharded) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	// In-flight appenders hold closeGate read locks until their commit
	// is acknowledged; acquiring the write lock waits them out while the
	// committers are still running to serve them. Appenders arriving
	// after observe the closed flag and bail.
	s.closeGate.Lock()
	//lint:ignore SA2001 barrier, not a critical section — the empty lock/unlock pair waits out in-flight appenders
	s.closeGate.Unlock()
	var first error
	for _, sh := range s.shards {
		if err := sh.close(); err != nil && first == nil {
			first = err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	flushErr := s.metaErr
	if flushErr == nil {
		flushErr = s.metaW.Flush()
	}
	if flushErr == nil {
		flushErr = s.metaF.Sync()
	}
	closeErr := s.metaF.Close()
	if first != nil {
		return first
	}
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Stats reports cumulative ingest counters, summed across shards. The
// commit count equals the number of append-path fsyncs, so
// Appends/Commits is the achieved group-commit batch size.
type Stats struct {
	Appends   int64 `json:"appends"`
	Commits   int64 `json:"commits"`
	Rotations int64 `json:"rotations"`
	Snapshots int64 `json:"snapshots"`
}

// Stats returns current counters.
func (s *Sharded) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		st.Appends += sh.appends.Load()
		st.Commits += sh.commits.Load()
		st.Rotations += sh.rotations.Load()
		st.Snapshots += sh.snapshots.Load()
	}
	return st
}

// ShardStats is one shard's observability snapshot for the admin
// surface: WAL shape (sealed segment count, snapshot coverage), when it
// last compacted, and its cumulative counters.
type ShardStats struct {
	ID int `json:"id"`
	// SealedSegments is the number of rotated-but-uncompacted WAL
	// segments (the active segment is not counted).
	SealedSegments int `json:"sealed_segments"`
	// SnapshotSeq is the highest segment sequence the current snapshot
	// covers (0 when the shard has never compacted).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// LastCompaction is when the shard last folded segments into a
	// snapshot; zero if never.
	LastCompaction time.Time `json:"last_compaction,omitzero"`
	Appends        int64     `json:"appends"`
	Commits        int64     `json:"commits"`
	Rotations      int64     `json:"rotations"`
	Snapshots      int64     `json:"snapshots"`
	// IdleCompactions counts snapshots triggered by the idle timer
	// rather than by segment rotation.
	IdleCompactions int64 `json:"idle_compactions"`
}

// ShardStats reports every shard's current state, in shard order.
func (s *Sharded) ShardStats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		st := ShardStats{
			ID:              sh.id,
			SealedSegments:  int(sh.sealedSegs.Load()),
			SnapshotSeq:     sh.snapSeqSeen.Load(),
			Appends:         sh.appends.Load(),
			Commits:         sh.commits.Load(),
			Rotations:       sh.rotations.Load(),
			Snapshots:       sh.snapshots.Load(),
			IdleCompactions: sh.idleCompactions.Load(),
		}
		if ns := sh.lastCompactNano.Load(); ns != 0 {
			st.LastCompaction = time.Unix(0, ns)
		}
		out[i] = st
	}
	return out
}

var _ store.Store = (*Sharded)(nil)
