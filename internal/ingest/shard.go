package ingest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/blockio"
	"loki/internal/store"
	"loki/internal/survey"
)

// appendReq is one response waiting to be committed. The committer
// replies on errc exactly once: nil after the record is durable (written
// and fsynced) and visible to reads, or the commit error.
type appendReq struct {
	resp    *survey.Response // validated private copy
	payload []byte           // marshaled JSON record; the codec frames it
	errc    chan error
}

// shard owns one hash partition of the response stream: a segmented WAL
// on disk, an in-memory index for reads, and a single committer goroutine
// that batches concurrent appends into group commits (one buffered write
// and one fsync per batch).
type shard struct {
	id  int
	dir string
	cfg Config

	reqCh chan *appendReq
	quit  chan struct{}
	done  chan struct{}

	// mu guards index for readers; the committer is the only writer.
	mu    sync.RWMutex
	index map[string][]survey.Response

	// Committer-owned state (no locking: single goroutine).
	seg       segAppender
	segSeq    uint64   // active segment sequence number
	segBytes  int64    // bytes appended to the active segment
	completed []uint64 // sealed segments not yet covered by a snapshot
	snapSeq   uint64   // highest segment seq covered by the latest snapshot
	tailBytes int64    // WAL bytes not yet folded into a snapshot
	snapBytes int64    // size of the current snapshot file
	failed    error    // sticky fatal I/O error; set only by the committer

	// Counters for observability and benchmarks.
	appends   atomic.Int64 // responses durably committed
	commits   atomic.Int64 // group commits (== fsyncs on the append path)
	rotations atomic.Int64
	snapshots atomic.Int64
	// Admin-surface mirrors of committer-owned state, readable without
	// the committer's cooperation.
	idleCompactions atomic.Int64
	sealedSegs      atomic.Int64  // len(completed)
	snapSeqSeen     atomic.Uint64 // == snapSeq
	lastCompactNano atomic.Int64  // unix nanos of the last snapshot, 0 if never
}

// openShard recovers a shard from its directory (snapshot + WAL tail
// replay) and starts its committer.
func openShard(id int, dir string, cfg Config) (*shard, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: mkdir %s: %w", dir, err)
	}
	sh := &shard{
		id:    id,
		dir:   dir,
		cfg:   cfg,
		reqCh: make(chan *appendReq, cfg.MaxBatch),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		index: make(map[string][]survey.Response),
	}
	if err := removeTmp(dir); err != nil {
		return nil, err
	}
	if err := sh.loadSnapshot(); err != nil {
		return nil, err
	}
	segs, err := listSeqs(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	maxSeq := sh.snapSeq
	for i, seq := range segs {
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq <= sh.snapSeq {
			// Covered by the snapshot; a crash raced compaction's removal.
			if err := os.Remove(filepath.Join(dir, segName(seq))); err != nil {
				return nil, fmt.Errorf("ingest: drop covered segment: %w", err)
			}
			continue
		}
		// Only the newest segment may have a torn tail; older ones were
		// sealed with an fsync before their successor was created.
		tornOK := i == len(segs)-1
		if err := sh.replaySegment(seq, tornOK); err != nil {
			return nil, err
		}
		sh.completed = append(sh.completed, seq)
		if fi, err := os.Stat(filepath.Join(dir, segName(seq))); err == nil {
			sh.tailBytes += fi.Size()
		}
	}
	// Always start appends in a fresh segment: reopening a replayed tail
	// for append would complicate torn-tail truncation for no benefit.
	sh.sealedSegs.Store(int64(len(sh.completed)))
	sh.segSeq = maxSeq + 1
	if err := sh.openSegment(); err != nil {
		return nil, err
	}
	go sh.run()
	return sh, nil
}

// replaySegment loads every complete response record of one segment into
// the index, truncating a torn tail when tornOK. The codec is sniffed
// per file, so a directory written under the other codec (or a mix,
// mid-migration) replays transparently.
func (sh *shard) replaySegment(seq uint64, tornOK bool) error {
	path := filepath.Join(sh.dir, segName(seq))
	apply := func(rec []byte) error {
		var r survey.Response
		if err := json.Unmarshal(rec, &r); err != nil {
			return fmt.Errorf("corrupt response record: %w", err)
		}
		sh.index[r.SurveyID] = append(sh.index[r.SurveyID], r)
		return nil
	}
	bin, err := blockio.Sniff(path)
	if err != nil {
		return fmt.Errorf("ingest: sniff segment %s: %w", path, err)
	}
	if bin {
		_, err := blockio.Replay(path, tornOK, func(_ uint64, payload []byte) error {
			return apply(payload)
		})
		return err
	}
	return store.ReplayLines(path, tornOK, apply)
}

// openSegment creates the active segment file for sh.segSeq and makes its
// directory entry durable.
func (sh *shard) openSegment() error {
	path := filepath.Join(sh.dir, segName(sh.segSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: create segment %s: %w", path, err)
	}
	seg, err := newSegAppender(sh.cfg.Codec, f)
	if err != nil {
		f.Close()
		return err
	}
	if err := syncDir(sh.dir); err != nil {
		f.Close()
		return err
	}
	sh.seg = seg
	sh.segBytes = 0
	return nil
}

// run is the committer loop: take the first waiting request, gather
// everything else already queued (plus, optionally, a commit window of
// latecomers), and commit the batch with a single write + fsync. A
// shard that stays quiet for IdleCompact gets its WAL tail folded into
// a snapshot — without this, compaction (which otherwise runs only on
// segment rotation) would never reclaim the tail of an idle shard.
func (sh *shard) run() {
	defer close(sh.done)
	var idleC <-chan time.Time
	var idleT *time.Timer
	if sh.cfg.IdleCompact > 0 {
		idleT = time.NewTimer(sh.cfg.IdleCompact)
		defer idleT.Stop()
		idleC = idleT.C
	}
	for {
		select {
		case req := <-sh.reqCh:
			sh.commit(sh.collect(req))
			if idleT != nil {
				// Go 1.23+ timer semantics: Reset discards a pending
				// fire, no drain needed.
				idleT.Reset(sh.cfg.IdleCompact)
			}
		case <-idleC:
			sh.idleCompact()
			idleT.Reset(sh.cfg.IdleCompact)
		case <-sh.quit:
			// Serve whatever was enqueued before shutdown, then exit.
			for {
				select {
				case req := <-sh.reqCh:
					sh.commit(sh.collect(req))
				default:
					return
				}
			}
		}
	}
}

// shouldIdleCompact bounds idle compaction's write amplification: a
// snapshot rewrites the shard's whole history, so folding a tiny tail
// into a huge snapshot over and over would turn trickle writes into
// full-history rewrites. Requiring the unfolded tail to be at least 1/8
// of the current snapshot caps the amplification while still folding
// promptly when there is no snapshot yet (or a small one).
func shouldIdleCompact(tailBytes, snapBytes int64) bool {
	if tailBytes == 0 {
		return false
	}
	return tailBytes*8 >= snapBytes
}

// idleCompact folds a quiet shard's WAL tail into a snapshot: seal the
// active segment if it holds data, then compact every sealed segment.
// Runs on the committer goroutine, so it owns the segment state
// exclusively, exactly like the rotation-triggered path.
func (sh *shard) idleCompact() {
	if sh.failed != nil {
		return
	}
	if sh.segBytes == 0 && len(sh.completed) == 0 {
		return // nothing to fold
	}
	if !shouldIdleCompact(sh.tailBytes, sh.snapBytes) {
		return // tail too small to be worth rewriting the snapshot
	}
	if sh.segBytes > 0 {
		if err := sh.rotate(); err != nil {
			sh.failed = err
			return
		}
	}
	if len(sh.completed) == 0 {
		return
	}
	if err := sh.snapshot(); err != nil {
		sh.failed = err
		return
	}
	sh.idleCompactions.Add(1)
}

// collect builds a group-commit batch. It first drains every request
// already queued (batching arises naturally while the previous commit's
// fsync runs), then — if a commit window is configured — waits up to
// CommitInterval for more, trading latency for fewer fsyncs.
func (sh *shard) collect(first *appendReq) []*appendReq {
	batch := append(make([]*appendReq, 0, 16), first)
drain:
	for len(batch) < sh.cfg.MaxBatch {
		select {
		case r := <-sh.reqCh:
			batch = append(batch, r)
		default:
			break drain
		}
	}
	if sh.cfg.CommitInterval <= 0 || len(batch) >= sh.cfg.MaxBatch {
		return batch
	}
	t := time.NewTimer(sh.cfg.CommitInterval)
	defer t.Stop()
	for len(batch) < sh.cfg.MaxBatch {
		select {
		case r := <-sh.reqCh:
			batch = append(batch, r)
		case <-t.C:
			return batch
		}
	}
	return batch
}

// commit makes a batch durable and visible: one buffered write of every
// record, one flush, one fsync, then an index update and replies to every
// waiter. On an I/O error the shard fails sticky — durability code must
// not guess at the on-disk state after a failed write.
func (sh *shard) commit(batch []*appendReq) {
	reply := func(err error) {
		for _, r := range batch {
			r.errc <- err
		}
	}
	if sh.failed != nil {
		reply(sh.failed)
		return
	}
	before := sh.seg.offset()
	var werr error
	for _, r := range batch {
		if err := sh.seg.append(r.payload); err != nil {
			werr = err
			break
		}
	}
	if werr == nil {
		werr = sh.seg.flush()
	}
	if werr == nil {
		werr = sh.seg.sync()
	}
	if werr != nil {
		sh.failed = fmt.Errorf("ingest: shard %d segment %d: %w", sh.id, sh.segSeq, werr)
		reply(sh.failed)
		return
	}
	// Framed (binary: compressed) bytes, measured after the flush so the
	// rotation threshold tracks the on-disk size, not the logical one.
	n := sh.seg.offset() - before
	sh.segBytes += n
	sh.tailBytes += n
	sh.mu.Lock()
	for _, r := range batch {
		sh.index[r.resp.SurveyID] = append(sh.index[r.resp.SurveyID], *r.resp)
	}
	sh.mu.Unlock()
	sh.appends.Add(int64(len(batch)))
	sh.commits.Add(1)
	reply(nil)
	if sh.segBytes >= sh.cfg.SegmentBytes {
		sh.maintain()
	}
}

// maintain runs between commits: seal the full active segment, open the
// next one, and compact once enough sealed segments accumulate. Errors
// fail the shard sticky; in-flight data is already durable, only future
// appends are refused.
func (sh *shard) maintain() {
	if err := sh.rotate(); err != nil {
		sh.failed = err
		return
	}
	if len(sh.completed) >= sh.cfg.CompactSegments {
		if err := sh.snapshot(); err != nil {
			sh.failed = err
		}
	}
}

// rotate seals the active segment (record data already fsynced by the
// last commit; the binary codec appends and fsyncs its block index here)
// and opens its successor. Only rotation seals: the active segment stays
// unsealed so a crash mid-append truncates cleanly on replay.
func (sh *shard) rotate() error {
	if err := sh.seg.seal(); err != nil {
		return fmt.Errorf("ingest: seal segment %d: %w", sh.segSeq, err)
	}
	if err := sh.seg.close(); err != nil {
		return fmt.Errorf("ingest: seal segment %d: %w", sh.segSeq, err)
	}
	sh.completed = append(sh.completed, sh.segSeq)
	sh.sealedSegs.Store(int64(len(sh.completed)))
	sh.segSeq++
	sh.rotations.Add(1)
	return sh.openSegment()
}

// close stops the committer (serving everything already enqueued) and
// closes the active segment — flushed and fsynced but deliberately NOT
// sealed, so the next open can keep treating it as a repairable tail.
// Callers must guarantee no new appends are in flight.
func (sh *shard) close() error {
	close(sh.quit)
	<-sh.done
	if sh.seg == nil {
		return sh.failed
	}
	flushErr := sh.seg.flush()
	if flushErr == nil {
		flushErr = sh.seg.sync()
	}
	closeErr := sh.seg.close()
	sh.seg = nil
	if sh.failed != nil {
		return sh.failed
	}
	if flushErr != nil {
		return fmt.Errorf("ingest: close shard %d: %w", sh.id, flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("ingest: close shard %d: %w", sh.id, closeErr)
	}
	return nil
}

// scan streams the shard's responses for one survey from fromSeq
// onwards, without materializing a copy: the index is the recovered
// snapshot + WAL tail and is append-only per survey, so the slice
// header captured under the read lock is a consistent snapshot the
// iteration can walk lock-free (the committer only ever writes beyond
// the captured length).
func (sh *shard) scan(surveyID string, fromSeq uint64, fn func(seq uint64, r *survey.Response) error) error {
	sh.mu.RLock()
	rs := sh.index[surveyID]
	sh.mu.RUnlock()
	return store.ScanSlice(rs, fromSeq, fn)
}

// responseCount returns the shard's response count for one survey.
func (sh *shard) responseCount(surveyID string) int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.index[surveyID])
}
