package ingest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/store"
	"loki/internal/survey"
)

// appendReq is one response waiting to be committed. The committer
// replies on errc exactly once: nil after the record is durable (written
// and fsynced) and visible to reads, or the commit error.
type appendReq struct {
	resp *survey.Response // validated private copy
	line []byte           // marshaled JSON record, newline-terminated
	errc chan error
}

// shard owns one hash partition of the response stream: a segmented WAL
// on disk, an in-memory index for reads, and a single committer goroutine
// that batches concurrent appends into group commits (one buffered write
// and one fsync per batch).
type shard struct {
	id  int
	dir string
	cfg Config

	reqCh chan *appendReq
	quit  chan struct{}
	done  chan struct{}

	// mu guards index for readers; the committer is the only writer.
	mu    sync.RWMutex
	index map[string][]survey.Response

	// Committer-owned state (no locking: single goroutine).
	f         *os.File
	w         *bufio.Writer
	segSeq    uint64   // active segment sequence number
	segBytes  int64    // bytes appended to the active segment
	completed []uint64 // sealed segments not yet covered by a snapshot
	snapSeq   uint64   // highest segment seq covered by the latest snapshot
	failed    error    // sticky fatal I/O error; set only by the committer

	// Counters for observability and benchmarks.
	appends   atomic.Int64 // responses durably committed
	commits   atomic.Int64 // group commits (== fsyncs on the append path)
	rotations atomic.Int64
	snapshots atomic.Int64
}

// openShard recovers a shard from its directory (snapshot + WAL tail
// replay) and starts its committer.
func openShard(id int, dir string, cfg Config) (*shard, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: mkdir %s: %w", dir, err)
	}
	sh := &shard{
		id:    id,
		dir:   dir,
		cfg:   cfg,
		reqCh: make(chan *appendReq, cfg.MaxBatch),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		index: make(map[string][]survey.Response),
	}
	if err := removeTmp(dir); err != nil {
		return nil, err
	}
	if err := sh.loadSnapshot(); err != nil {
		return nil, err
	}
	segs, err := listSeqs(dir, segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	maxSeq := sh.snapSeq
	for i, seq := range segs {
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq <= sh.snapSeq {
			// Covered by the snapshot; a crash raced compaction's removal.
			if err := os.Remove(filepath.Join(dir, segName(seq))); err != nil {
				return nil, fmt.Errorf("ingest: drop covered segment: %w", err)
			}
			continue
		}
		// Only the newest segment may have a torn tail; older ones were
		// sealed with an fsync before their successor was created.
		tornOK := i == len(segs)-1
		if err := sh.replaySegment(seq, tornOK); err != nil {
			return nil, err
		}
		sh.completed = append(sh.completed, seq)
	}
	// Always start appends in a fresh segment: reopening a replayed tail
	// for append would complicate torn-tail truncation for no benefit.
	sh.segSeq = maxSeq + 1
	if err := sh.openSegment(); err != nil {
		return nil, err
	}
	go sh.run()
	return sh, nil
}

// replaySegment loads every complete response record of one segment into
// the index, truncating a torn tail when tornOK.
func (sh *shard) replaySegment(seq uint64, tornOK bool) error {
	path := filepath.Join(sh.dir, segName(seq))
	return store.ReplayLines(path, tornOK, func(line []byte) error {
		var r survey.Response
		if err := json.Unmarshal(line, &r); err != nil {
			return fmt.Errorf("corrupt response record: %w", err)
		}
		sh.index[r.SurveyID] = append(sh.index[r.SurveyID], r)
		return nil
	})
}

// openSegment creates the active segment file for sh.segSeq and makes its
// directory entry durable.
func (sh *shard) openSegment() error {
	path := filepath.Join(sh.dir, segName(sh.segSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: create segment %s: %w", path, err)
	}
	if err := syncDir(sh.dir); err != nil {
		f.Close()
		return err
	}
	sh.f = f
	sh.w = bufio.NewWriterSize(f, 1<<16)
	sh.segBytes = 0
	return nil
}

// run is the committer loop: take the first waiting request, gather
// everything else already queued (plus, optionally, a commit window of
// latecomers), and commit the batch with a single write + fsync.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		select {
		case req := <-sh.reqCh:
			sh.commit(sh.collect(req))
		case <-sh.quit:
			// Serve whatever was enqueued before shutdown, then exit.
			for {
				select {
				case req := <-sh.reqCh:
					sh.commit(sh.collect(req))
				default:
					return
				}
			}
		}
	}
}

// collect builds a group-commit batch. It first drains every request
// already queued (batching arises naturally while the previous commit's
// fsync runs), then — if a commit window is configured — waits up to
// CommitInterval for more, trading latency for fewer fsyncs.
func (sh *shard) collect(first *appendReq) []*appendReq {
	batch := append(make([]*appendReq, 0, 16), first)
drain:
	for len(batch) < sh.cfg.MaxBatch {
		select {
		case r := <-sh.reqCh:
			batch = append(batch, r)
		default:
			break drain
		}
	}
	if sh.cfg.CommitInterval <= 0 || len(batch) >= sh.cfg.MaxBatch {
		return batch
	}
	t := time.NewTimer(sh.cfg.CommitInterval)
	defer t.Stop()
	for len(batch) < sh.cfg.MaxBatch {
		select {
		case r := <-sh.reqCh:
			batch = append(batch, r)
		case <-t.C:
			return batch
		}
	}
	return batch
}

// commit makes a batch durable and visible: one buffered write of every
// record, one flush, one fsync, then an index update and replies to every
// waiter. On an I/O error the shard fails sticky — durability code must
// not guess at the on-disk state after a failed write.
func (sh *shard) commit(batch []*appendReq) {
	reply := func(err error) {
		for _, r := range batch {
			r.errc <- err
		}
	}
	if sh.failed != nil {
		reply(sh.failed)
		return
	}
	var n int64
	var werr error
	for _, r := range batch {
		if _, err := sh.w.Write(r.line); err != nil {
			werr = err
			break
		}
		n += int64(len(r.line))
	}
	if werr == nil {
		werr = sh.w.Flush()
	}
	if werr == nil {
		werr = sh.f.Sync()
	}
	if werr != nil {
		sh.failed = fmt.Errorf("ingest: shard %d segment %d: %w", sh.id, sh.segSeq, werr)
		reply(sh.failed)
		return
	}
	sh.segBytes += n
	sh.mu.Lock()
	for _, r := range batch {
		sh.index[r.resp.SurveyID] = append(sh.index[r.resp.SurveyID], *r.resp)
	}
	sh.mu.Unlock()
	sh.appends.Add(int64(len(batch)))
	sh.commits.Add(1)
	reply(nil)
	if sh.segBytes >= sh.cfg.SegmentBytes {
		sh.maintain()
	}
}

// maintain runs between commits: seal the full active segment, open the
// next one, and compact once enough sealed segments accumulate. Errors
// fail the shard sticky; in-flight data is already durable, only future
// appends are refused.
func (sh *shard) maintain() {
	if err := sh.rotate(); err != nil {
		sh.failed = err
		return
	}
	if len(sh.completed) >= sh.cfg.CompactSegments {
		if err := sh.snapshot(); err != nil {
			sh.failed = err
		}
	}
}

// rotate seals the active segment (already fsynced by the last commit)
// and opens its successor.
func (sh *shard) rotate() error {
	if err := sh.f.Close(); err != nil {
		return fmt.Errorf("ingest: seal segment %d: %w", sh.segSeq, err)
	}
	sh.completed = append(sh.completed, sh.segSeq)
	sh.segSeq++
	sh.rotations.Add(1)
	return sh.openSegment()
}

// close stops the committer (serving everything already enqueued) and
// seals the active segment. Callers must guarantee no new appends are in
// flight.
func (sh *shard) close() error {
	close(sh.quit)
	<-sh.done
	if sh.f == nil {
		return sh.failed
	}
	flushErr := sh.w.Flush()
	if flushErr == nil {
		flushErr = sh.f.Sync()
	}
	closeErr := sh.f.Close()
	sh.f = nil
	if sh.failed != nil {
		return sh.failed
	}
	if flushErr != nil {
		return fmt.Errorf("ingest: close shard %d: %w", sh.id, flushErr)
	}
	if closeErr != nil {
		return fmt.Errorf("ingest: close shard %d: %w", sh.id, closeErr)
	}
	return nil
}

// responses returns a copy of the shard's responses for one survey.
func (sh *shard) responses(surveyID string) []survey.Response {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rs := sh.index[surveyID]
	out := make([]survey.Response, len(rs))
	copy(out, rs)
	return out
}

// responseCount returns the shard's response count for one survey.
func (sh *shard) responseCount(surveyID string) int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.index[surveyID])
}
