package ingest

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"loki/internal/blockio"
	"loki/internal/survey"
)

// scanAll collects one survey's full (seq, response) stream.
func scanAll(t *testing.T, s *Sharded, surveyID string) []survey.Response {
	t.Helper()
	var out []survey.Response
	if err := s.ScanResponses(surveyID, 0, func(seq uint64, r *survey.Response) error {
		if seq != uint64(len(out)+1) {
			return fmt.Errorf("seq %d out of order (have %d)", seq, len(out))
		}
		out = append(out, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// segCodecs sniffs every WAL segment of one shard dir and returns how
// many are binary vs JSON.
func segCodecs(t *testing.T, shardDir string) (binary, json int) {
	t.Helper()
	segs, err := listSeqs(shardDir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range segs {
		bin, err := blockio.Sniff(filepath.Join(shardDir, segName(seq)))
		if err != nil {
			t.Fatal(err)
		}
		if bin {
			binary++
		} else {
			json++
		}
	}
	return binary, json
}

// TestMigrateJSONDirToBinary: a directory written entirely under the
// JSON-lines codec reopens under the binary codec (the default), replays
// identically, and writes its NEW segments in binary — per-file
// autodetection migrates the directory in place, no rewrite step.
func TestMigrateJSONDirToBinary(t *testing.T) {
	dir := t.TempDir()
	cfgJSON := testConfig(2)
	cfgJSON.CompactSegments = 1000 // keep segments so the reopen replays real JSON files
	cfgJSON.Codec = blockio.CodecJSON

	s := openTest(t, dir, cfgJSON)
	sv := benchSurvey(0)
	if err := s.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	const oldN = 150
	for k := 0; k < oldN; k++ {
		if err := s.AppendResponse(benchResponse(sv.ID, fmt.Sprintf("old-%03d", k))); err != nil {
			t.Fatal(err)
		}
	}
	want := scanAll(t, s, sv.ID)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, shardDirName(s.shardFor(sv.ID).id))
	if bin, jsn := segCodecs(t, shardDir); bin != 0 || jsn == 0 {
		t.Fatalf("JSON-era shard dir holds %d binary / %d json segments", bin, jsn)
	}

	// Reopen with the binary codec: same records, then new binary segments.
	cfgBin := cfgJSON
	cfgBin.Codec = "" // defaulted: binary
	s2 := openTest(t, dir, cfgBin)
	defer s2.Close()
	if got := scanAll(t, s2, sv.ID); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened scan diverged: %d records vs %d", len(got), len(want))
	}
	for k := 0; k < oldN; k++ {
		if err := s2.AppendResponse(benchResponse(sv.ID, fmt.Sprintf("new-%03d", k))); err != nil {
			t.Fatal(err)
		}
	}
	want2 := scanAll(t, s2, sv.ID)
	if len(want2) != 2*oldN {
		t.Fatalf("after migration appends: %d records, want %d", len(want2), 2*oldN)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	bin, jsn := segCodecs(t, shardDir)
	if bin == 0 {
		t.Fatal("no binary segments written after reopening with the binary codec")
	}
	if jsn == 0 {
		t.Fatal("old JSON segments vanished — migration must be in place, not a rewrite")
	}

	// A third open replays the mixed-codec directory end to end.
	s3 := openTest(t, dir, cfgBin)
	defer s3.Close()
	if got := scanAll(t, s3, sv.ID); !reflect.DeepEqual(got, want2) {
		t.Fatalf("mixed-codec scan diverged: %d records vs %d", len(got), len(want2))
	}
}

// TestCodecEquivalence: the same append sequence through the binary and
// JSON codecs — across rotations, snapshots and a reopen — yields
// byte-identical record streams. The codec is a storage detail, never a
// semantic one.
func TestCodecEquivalence(t *testing.T) {
	stores := map[string]*Sharded{}
	dirs := map[string]string{}
	for _, codec := range []string{blockio.CodecBinary, blockio.CodecJSON} {
		cfg := testConfig(2)
		cfg.Codec = codec
		dirs[codec] = t.TempDir()
		stores[codec] = openTest(t, dirs[codec], cfg)
	}
	surveys := []*survey.Survey{benchSurvey(0), benchSurvey(1), benchSurvey(2)}
	for _, sv := range surveys {
		for _, s := range stores {
			if err := s.PutSurvey(sv); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Enough volume to rotate 4KiB segments and trigger snapshots in both.
	for k := 0; k < 400; k++ {
		sv := surveys[k%len(surveys)]
		r := benchResponse(sv.ID, fmt.Sprintf("w-%04d", k))
		for _, s := range stores {
			if err := s.AppendResponse(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, sv := range surveys {
		b := scanAll(t, stores[blockio.CodecBinary], sv.ID)
		j := scanAll(t, stores[blockio.CodecJSON], sv.ID)
		if !reflect.DeepEqual(b, j) {
			t.Fatalf("survey %s: binary (%d records) and JSON (%d records) streams diverge", sv.ID, len(b), len(j))
		}
	}
	// Recovery must preserve the equivalence, codec by codec.
	for codec, s := range stores {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(2)
		cfg.Codec = codec
		stores[codec] = openTest(t, dirs[codec], cfg)
		defer stores[codec].Close()
	}
	for _, sv := range surveys {
		b := scanAll(t, stores[blockio.CodecBinary], sv.ID)
		j := scanAll(t, stores[blockio.CodecJSON], sv.ID)
		if len(b) == 0 || !reflect.DeepEqual(b, j) {
			t.Fatalf("survey %s after reopen: binary (%d) and JSON (%d) streams diverge", sv.ID, len(b), len(j))
		}
	}
}
