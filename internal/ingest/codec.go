package ingest

import (
	"bufio"
	"fmt"
	"os"

	"loki/internal/blockio"
)

// segAppender is the committer's write seam over one active segment
// file: the readable JSON-lines codec or the blockio binary codec
// behind the same group-commit verbs. Replay dispatches per file by
// sniffing the format magic, so a directory can mix codecs (the
// in-place migration story: old segments stay JSON, new ones are
// written in the configured codec).
type segAppender interface {
	// append buffers one record (no terminator; the codec frames it).
	append(payload []byte) error
	// flush pushes every buffered byte to the OS — the group-commit
	// boundary. Durability still needs sync.
	flush() error
	sync() error
	// seal finalizes a rotated segment: the binary codec appends its
	// block index so cold scans can seek; JSON has nothing to add.
	seal() error
	// close closes the fd. Callers flush/sync (or seal) first.
	close() error
	// offset is the segment's size in framed bytes after a flush.
	offset() int64
	// file exposes the fd (tests sabotage it to exercise sticky
	// failure handling).
	file() *os.File
}

func newSegAppender(codec string, f *os.File) (segAppender, error) {
	switch codec {
	case blockio.CodecJSON:
		return &jsonSeg{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
	case blockio.CodecBinary:
		w, err := blockio.NewWriter(f, 1)
		if err != nil {
			return nil, err
		}
		return &binarySeg{f: f, w: w}, nil
	default:
		return nil, fmt.Errorf("ingest: unknown codec %q", codec)
	}
}

type jsonSeg struct {
	f *os.File
	w *bufio.Writer
	n int64
}

func (s *jsonSeg) append(p []byte) error {
	if _, err := s.w.Write(p); err != nil {
		return err
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return err
	}
	s.n += int64(len(p)) + 1
	return nil
}

func (s *jsonSeg) flush() error   { return s.w.Flush() }
func (s *jsonSeg) sync() error    { return s.f.Sync() }
func (s *jsonSeg) seal() error    { return nil }
func (s *jsonSeg) close() error   { return s.f.Close() }
func (s *jsonSeg) offset() int64  { return s.n }
func (s *jsonSeg) file() *os.File { return s.f }

type binarySeg struct {
	f *os.File
	w *blockio.Writer
}

func (s *binarySeg) append(p []byte) error {
	_, err := s.w.Append(p)
	return err
}

func (s *binarySeg) flush() error   { return s.w.Flush() }
func (s *binarySeg) sync() error    { return s.w.Sync() }
func (s *binarySeg) seal() error    { return s.w.Seal() }
func (s *binarySeg) close() error   { return s.f.Close() }
func (s *binarySeg) offset() int64  { return s.w.Offset() }
func (s *binarySeg) file() *os.File { return s.f }
