package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"loki/internal/store"
	"loki/internal/survey"
)

// testConfig keeps segments tiny so rotation and compaction trigger
// under test-sized workloads.
func testConfig(shards int) Config {
	return Config{
		Shards:          shards,
		MaxBatch:        64,
		SegmentBytes:    4096,
		CompactSegments: 2,
	}
}

func openTest(t *testing.T, dir string, cfg Config) *Sharded {
	t.Helper()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleSurvey() *survey.Survey {
	return survey.Lecturers([]string{"A", "B"})
}

func sampleResponse(worker string) *survey.Response {
	return &survey.Response{
		SurveyID: survey.LecturerID,
		WorkerID: worker,
		Answers: []survey.Answer{
			survey.RatingAnswer("lecturer-00", 4),
			survey.RatingAnswer("lecturer-01", 3),
		},
		PrivacyLevel: "medium",
		Obfuscated:   true,
	}
}

// benchSurvey returns a small distinct survey so tests can spread load
// across shards.
func benchSurvey(i int) *survey.Survey {
	return &survey.Survey{
		ID:    fmt.Sprintf("ingest-test-%02d", i),
		Title: fmt.Sprintf("Ingest test survey %d", i),
		Questions: []survey.Question{
			{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
		},
		RewardCents: 10,
	}
}

func benchResponse(surveyID, worker string) *survey.Response {
	return &survey.Response{
		SurveyID:     surveyID,
		WorkerID:     worker,
		Answers:      []survey.Answer{survey.RatingAnswer("q0", 3)},
		PrivacyLevel: "medium",
		Obfuscated:   true,
	}
}

// TestStoreContract exercises the store.Store contract, mirroring the
// store package's own contract test.
func TestStoreContract(t *testing.T) {
	s := openTest(t, t.TempDir(), testConfig(4))
	defer s.Close()

	sv := sampleSurvey()
	if err := s.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSurvey(sv); !errors.Is(err, store.ErrExists) {
		t.Fatalf("duplicate put: %v", err)
	}
	if err := s.PutSurvey(&survey.Survey{ID: "bad"}); err == nil {
		t.Fatal("invalid survey stored")
	}
	got, err := s.Survey(sv.ID)
	if err != nil || got.ID != sv.ID {
		t.Fatalf("Survey: %v, %v", got, err)
	}
	if _, err := s.Survey("nope"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("missing survey: %v", err)
	}
	all, err := s.Surveys()
	if err != nil || len(all) != 1 {
		t.Fatalf("Surveys: %d, %v", len(all), err)
	}

	if err := s.AppendResponse(sampleResponse("w1")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendResponse(sampleResponse("w2")); err != nil {
		t.Fatal(err)
	}
	bad := sampleResponse("w3")
	bad.SurveyID = "nope"
	if err := s.AppendResponse(bad); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("response to unknown survey: %v", err)
	}
	short := sampleResponse("w4")
	short.Answers = short.Answers[:1]
	if err := s.AppendResponse(short); err == nil {
		t.Fatal("invalid response stored")
	}

	rs, err := s.Responses(sv.ID)
	if err != nil || len(rs) != 2 {
		t.Fatalf("Responses: %d, %v", len(rs), err)
	}
	if rs[0].WorkerID != "w1" || rs[1].WorkerID != "w2" {
		t.Fatalf("append order lost: %q, %q", rs[0].WorkerID, rs[1].WorkerID)
	}
	if _, err := s.Responses("nope"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("responses of unknown survey: %v", err)
	}
	if n := s.ResponseCount(sv.ID); n != 2 {
		t.Fatalf("ResponseCount = %d, want 2", n)
	}
	if n := s.ResponseCount("nope"); n != 0 {
		t.Fatalf("ResponseCount(unknown) = %d, want 0", n)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendResponse(sampleResponse("w5")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := s.PutSurvey(benchSurvey(0)); err == nil {
		t.Fatal("put after close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestConcurrentAppends hammers every shard from many goroutines and
// checks nothing is lost, misplaced or reordered per worker stream.
func TestConcurrentAppends(t *testing.T) {
	s := openTest(t, t.TempDir(), testConfig(4))
	defer s.Close()

	const surveys = 8
	const workers = 16
	const perWorker = 25
	for i := 0; i < surveys; i++ {
		if err := s.PutSurvey(benchSurvey(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, surveys*workers)
	for i := 0; i < surveys; i++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(i, w int) {
				defer wg.Done()
				id := benchSurvey(i).ID
				for k := 0; k < perWorker; k++ {
					r := benchResponse(id, fmt.Sprintf("s%d-w%d-%d", i, w, k))
					if err := s.AppendResponse(r); err != nil {
						errs <- err
						return
					}
				}
			}(i, w)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < surveys; i++ {
		id := benchSurvey(i).ID
		if n := s.ResponseCount(id); n != workers*perWorker {
			t.Fatalf("survey %d: %d responses, want %d", i, n, workers*perWorker)
		}
	}
	st := s.Stats()
	if st.Appends != surveys*workers*perWorker {
		t.Fatalf("Stats.Appends = %d, want %d", st.Appends, surveys*workers*perWorker)
	}
	if st.Commits < 1 || st.Commits > st.Appends {
		t.Fatalf("Stats.Commits = %d outside [1, %d]", st.Commits, st.Appends)
	}
}

// TestReopenReplaysEverything writes through rotations and compactions,
// closes, reopens, and verifies every acknowledged response survives.
func TestReopenReplaysEverything(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(3)
	s := openTest(t, dir, cfg)

	const surveys = 6
	const perSurvey = 120 // well past SegmentBytes with ~200-byte records
	for i := 0; i < surveys; i++ {
		if err := s.PutSurvey(benchSurvey(i)); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < perSurvey; k++ {
		for i := 0; i < surveys; i++ {
			if err := s.AppendResponse(benchResponse(benchSurvey(i).ID, fmt.Sprintf("w%04d", k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.Rotations == 0 {
		t.Fatal("no segment rotation happened; shrink SegmentBytes")
	}
	if st.Snapshots == 0 {
		t.Fatal("no snapshot compaction happened; shrink CompactSegments")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, cfg)
	defer s2.Close()
	svs, err := s2.Surveys()
	if err != nil || len(svs) != surveys {
		t.Fatalf("Surveys after reopen: %d, %v", len(svs), err)
	}
	for i := 0; i < surveys; i++ {
		id := benchSurvey(i).ID
		rs, err := s2.Responses(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != perSurvey {
			t.Fatalf("survey %d: %d responses after reopen, want %d", i, len(rs), perSurvey)
		}
		for k, r := range rs {
			if want := fmt.Sprintf("w%04d", k); r.WorkerID != want {
				t.Fatalf("survey %d response %d: worker %q, want %q (order lost)", i, k, r.WorkerID, want)
			}
		}
	}
}

// TestShardCountFixed: reopening with a different shard count must fail
// rather than silently misplace responses.
func TestShardCountFixed(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testConfig(4))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testConfig(8)); err == nil {
		t.Fatal("shard count change accepted")
	}
	s2 := openTest(t, dir, testConfig(4))
	s2.Close()
}

// TestConfigValidate rejects nonsense configurations.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Shards: -1},
		{Shards: 4096},
		{Shards: 1, MaxBatch: -2},
		{Shards: 1, SegmentBytes: 16},
		{Shards: 1, CommitInterval: -1},
	}
	for i, cfg := range bad {
		if _, err := Open(t.TempDir(), cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestSurveysSurviveAlone: a reopened store with surveys but no
// responses replays the meta log.
func TestSurveysSurviveAlone(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, testConfig(2))
	if err := s.PutSurvey(sampleSurvey()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, testConfig(2))
	defer s2.Close()
	if _, err := s2.Survey(survey.LecturerID); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionPrunesSegments: after a snapshot, the shard directory
// holds only the WAL tail, and the snapshot plus tail still replay to
// the full data set.
func TestCompactionPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1) // single shard so all load hits one WAL
	s := openTest(t, dir, cfg)
	sv := benchSurvey(0)
	if err := s.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	const n = 400
	for k := 0; k < n; k++ {
		if err := s.AppendResponse(benchResponse(sv.ID, fmt.Sprintf("w%04d", k))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Snapshots == 0 {
		t.Fatal("no snapshot happened")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	shardDir := filepath.Join(dir, shardDirName(0))
	segs, err := listSeqs(shardDir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := listSeqs(shardDir, snapPrefix, snapSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots on disk, want 1", len(snaps))
	}
	if len(segs) > cfg.CompactSegments+2 {
		t.Fatalf("%d segments on disk after compaction, want <= %d", len(segs), cfg.CompactSegments+2)
	}
	for _, seq := range segs {
		if seq <= snaps[0] {
			t.Fatalf("segment %d should have been compacted away (snapshot covers %d)", seq, snaps[0])
		}
	}

	s2 := openTest(t, dir, cfg)
	defer s2.Close()
	if got := s2.ResponseCount(sv.ID); got != n {
		t.Fatalf("after compaction + reopen: %d responses, want %d", got, n)
	}
}

// TestFailedShardRefusesAppends: a sticky I/O failure must surface on
// every subsequent append instead of silently dropping data.
func TestFailedShardRefusesAppends(t *testing.T) {
	s := openTest(t, t.TempDir(), testConfig(1))
	defer s.Close()
	sv := benchSurvey(0)
	if err := s.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendResponse(benchResponse(sv.ID, "w1")); err != nil {
		t.Fatal(err)
	}
	// Sabotage the active segment file descriptor.
	sh := s.shards[0]
	if err := sh.seg.file().Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendResponse(benchResponse(sv.ID, "w2")); err == nil {
		t.Fatal("append to failed shard succeeded")
	}
	if err := s.AppendResponse(benchResponse(sv.ID, "w3")); err == nil {
		t.Fatal("append after sticky failure succeeded")
	}
	// Readers still serve what was acknowledged.
	if n := s.ResponseCount(sv.ID); n != 1 {
		t.Fatalf("ResponseCount = %d, want 1", n)
	}
	sh.seg = nil // keep Close from double-closing the sabotaged fd
}

// TestOpenRejectsCorruptInterior: a flipped byte inside a sealed,
// rotated segment must refuse to open, not silently drop data — sealed
// files replay with strict semantics (no torn-tail repair).
func TestOpenRejectsCorruptInterior(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1)
	cfg.CompactSegments = 1000 // keep the sealed segment from compacting away
	s := openTest(t, dir, cfg)
	sv := benchSurvey(0)
	if err := s.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	for k := 0; s.Stats().Rotations == 0; k++ {
		if k > 10000 {
			t.Fatal("no rotation after 10000 appends")
		}
		if err := s.AppendResponse(benchResponse(sv.ID, fmt.Sprintf("w%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	shardDir := filepath.Join(dir, shardDirName(0))
	segs, err := listSeqs(shardDir, segPrefix, segSuffix)
	if err != nil || len(segs) < 2 {
		t.Fatalf("segments: %v, %v (want a rotated segment plus the active one)", segs, err)
	}
	// segs[0] was rotated, so it carries its seal; corrupt its interior.
	path := filepath.Join(shardDir, segName(segs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, cfg); err == nil {
		t.Fatal("opened a store with interior corruption")
	}
}

// TestPartialFirstOpenRecovers: a crash during the first Open can leave
// the layout marker plus only a subset of shard directories; reopening
// with the original shard count must succeed (the marker, not the
// directory census, fixes the count).
func TestPartialFirstOpenRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(8)
	if err := checkLayout(dir, cfg.Shards); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: only 3 of 8 shard dirs got created.
	for i := 0; i < 3; i++ {
		if err := os.MkdirAll(filepath.Join(dir, shardDirName(i)), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	s := openTest(t, dir, cfg)
	defer s.Close()
	if err := s.PutSurvey(benchSurvey(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendResponse(benchResponse(benchSurvey(0).ID, "w1")); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptLayoutRefused: a mangled layout marker must refuse to open
// rather than guess a shard count.
func TestCorruptLayoutRefused(t *testing.T) {
	dir := t.TempDir()
	openTest(t, dir, testConfig(2)).Close()
	if err := os.WriteFile(filepath.Join(dir, layoutName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testConfig(2)); err == nil {
		t.Fatal("corrupt layout accepted")
	}
}

// TestCloseRacesAppend: Close concurrent with appends must never panic
// (the close gate replaces a WaitGroup whose Add could race Wait); every
// append either commits or reports use-after-close.
func TestCloseRacesAppend(t *testing.T) {
	s := openTest(t, t.TempDir(), testConfig(2))
	sv := benchSurvey(0)
	if err := s.PutSurvey(sv); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				err := s.AppendResponse(benchResponse(sv.ID, fmt.Sprintf("g%d-%d", g, k)))
				if err != nil {
					return // use-after-close is the expected refusal
				}
			}
		}(g)
	}
	s.Close()
	wg.Wait()
}

// TestMetaFailureSticky: a meta-log I/O failure must poison survey
// publishing — a retry after a failed flush could duplicate the record
// on disk and break the next replay.
func TestMetaFailureSticky(t *testing.T) {
	s := openTest(t, t.TempDir(), testConfig(1))
	defer s.Close()
	if err := s.PutSurvey(benchSurvey(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.metaF.Close(); err != nil { // sabotage the meta fd
		t.Fatal(err)
	}
	if err := s.PutSurvey(benchSurvey(1)); err == nil {
		t.Fatal("publish on dead meta fd succeeded")
	}
	if err := s.PutSurvey(benchSurvey(1)); err == nil {
		t.Fatal("publish after sticky meta failure succeeded")
	}
	// The failed survey must not be visible.
	if _, err := s.Survey(benchSurvey(1).ID); err == nil {
		t.Fatal("failed publish visible to reads")
	}
}
