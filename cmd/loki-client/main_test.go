package main

import (
	"testing"

	"loki/internal/survey"
)

func TestBuildAnswersDefaults(t *testing.T) {
	sv := survey.Awareness()
	answers, err := buildAnswers(sv, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(sv.Questions) {
		t.Fatalf("answers = %d", len(answers))
	}
	resp := survey.Response{SurveyID: sv.ID, WorkerID: "w", Answers: answers}
	if err := resp.Validate(sv); err != nil {
		t.Fatalf("default answers invalid: %v", err)
	}
}

func TestBuildAnswersParsed(t *testing.T) {
	sv := survey.Lecturers([]string{"A", "B"})
	answers, err := buildAnswers(sv, "4, 2")
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Rating != 4 || answers[1].Rating != 2 {
		t.Fatalf("parsed = %+v", answers)
	}
	mc := survey.Awareness()
	answers, err = buildAnswers(mc, "1,0")
	if err != nil {
		t.Fatal(err)
	}
	if answers[0].Choice != 1 || answers[1].Choice != 0 {
		t.Fatalf("choices = %+v", answers)
	}
}

func TestBuildAnswersErrors(t *testing.T) {
	sv := survey.Lecturers([]string{"A", "B"})
	if _, err := buildAnswers(sv, "4"); err == nil {
		t.Error("wrong count accepted")
	}
	if _, err := buildAnswers(sv, "4,notanumber"); err == nil {
		t.Error("garbage rating accepted")
	}
	mc := survey.Awareness()
	if _, err := buildAnswers(mc, "x,0"); err == nil {
		t.Error("garbage choice accepted")
	}
}
