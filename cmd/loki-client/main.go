// Command loki-client is the Loki app as a CLI: it lists surveys, takes
// one at a chosen privacy level with answers supplied on the command
// line (or plausible defaults), performs the at-source obfuscation, and
// shows the three Fig. 1 screens — survey list, questions, and the noisy
// answers that were actually uploaded, with the cumulative privacy loss.
//
// Usage:
//
//	loki-client -server http://127.0.0.1:8080 -list
//	loki-client -server http://127.0.0.1:8080 -survey lecturer-ratings \
//	            -level medium -answers 4,5,3,4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"loki/internal/client"
	"loki/internal/core"
	"loki/internal/survey"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:8080", "backend base URL")
	list := flag.Bool("list", false, "list available surveys and exit")
	surveyID := flag.String("survey", "", "survey to take")
	levelName := flag.String("level", "medium", "privacy level: none|low|medium|high")
	answersCSV := flag.String("answers", "", "comma-separated answers, one per question (numbers for ratings/numeric, option index for choices)")
	workerID := flag.String("worker", "cli-user", "worker ID to report")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "noise seed")
	ledgerPath := flag.String("ledger", "", "file to persist the privacy-loss ledger across runs")
	batch := flag.Int("batch", 0, "upload through the batching submit pipeline with this batch size (0 posts inline)")
	batchWait := flag.Duration("batch-wait", 50*time.Millisecond, "batching pipeline: flush a partial batch after this long")
	flag.Parse()

	if err := run(*serverURL, *surveyID, *levelName, *answersCSV, *workerID, *ledgerPath, *seed, *list, *batch, *batchWait); err != nil {
		log.Fatal("loki-client: ", err)
	}
}

func run(serverURL, surveyID, levelName, answersCSV, workerID, ledgerPath string, seed uint64, list bool, batch int, batchWait time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	c, err := client.New(client.Config{
		BaseURL:    serverURL,
		Schedule:   core.DefaultSchedule(),
		Seed:       seed,
		LedgerPath: ledgerPath,
	})
	if err != nil {
		return err
	}

	if list || surveyID == "" {
		summaries, err := c.ListSurveys(ctx)
		if err != nil {
			return err
		}
		fmt.Print(client.RenderSurveyList(summaries))
		if surveyID == "" {
			fmt.Println("pick one with -survey <id>")
			return nil
		}
	}

	sv, err := c.GetSurvey(ctx, surveyID)
	if err != nil {
		return err
	}
	fmt.Print(client.RenderQuestions(sv))
	fmt.Print(client.RenderLevelPicker(c.Obfuscator()))

	level, err := core.ParseLevel(levelName)
	if err != nil {
		return err
	}
	answers, err := buildAnswers(sv, answersCSV)
	if err != nil {
		return err
	}
	var res *client.TakeResult
	if batch > 0 {
		sub := c.NewSubmitter(client.SubmitterConfig{
			MaxBatch: batch, MaxWait: batchWait, Seed: seed,
		})
		defer sub.Close()
		res, err = c.TakeVia(ctx, sub, sv, workerID, answers, level)
	} else {
		res, err = c.Take(ctx, sv, workerID, answers, level)
	}
	if err != nil {
		return err
	}
	fmt.Print(client.RenderComparison(sv, res))
	return nil
}

// buildAnswers parses the -answers CSV against the survey, or fabricates
// plausible defaults (midpoint ratings, first options) when empty.
func buildAnswers(sv *survey.Survey, csv string) ([]survey.Answer, error) {
	var parts []string
	if csv != "" {
		parts = strings.Split(csv, ",")
		if len(parts) != len(sv.Questions) {
			return nil, fmt.Errorf("got %d answers for %d questions", len(parts), len(sv.Questions))
		}
	}
	answers := make([]survey.Answer, 0, len(sv.Questions))
	for i := range sv.Questions {
		q := &sv.Questions[i]
		var raw string
		if parts != nil {
			raw = strings.TrimSpace(parts[i])
		}
		switch q.Kind {
		case survey.Rating, survey.Numeric:
			v := (q.ScaleMin + q.ScaleMax) / 2
			if raw != "" {
				parsed, err := strconv.ParseFloat(raw, 64)
				if err != nil {
					return nil, fmt.Errorf("answer %d (%q): %v", i+1, q.ID, err)
				}
				v = parsed
			}
			answers = append(answers, survey.Answer{QuestionID: q.ID, Kind: q.Kind, Rating: v})
		case survey.MultipleChoice:
			choice := 0
			if raw != "" {
				parsed, err := strconv.Atoi(raw)
				if err != nil {
					return nil, fmt.Errorf("answer %d (%q): %v", i+1, q.ID, err)
				}
				choice = parsed
			}
			answers = append(answers, survey.ChoiceAnswer(q.ID, choice))
		default:
			answers = append(answers, survey.TextAnswer(q.ID, raw))
		}
	}
	return answers, nil
}
