// Read-path benchmark ("readpath" experiment id): aggregate-query
// throughput against a store preloaded with N responses, old batch path
// (materialize every response, recompute estimates from scratch) versus
// new incremental path (the server's live accumulator + cursor catch-up).
// The old path is O(N) per query; the new path is O(1), so its
// throughput should be flat across response counts. Results are teed to
// a machine-readable JSON file for trajectory tracking.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"loki/internal/core"
	"loki/internal/server"
	"loki/internal/store"
	"loki/internal/survey"
)

// readpathJSONPath is where the machine-readable report goes; set by the
// -readpath-json flag.
var readpathJSONPath = "BENCH_readpath.json"

// readpathSizesFlag selects the stored-response counts to measure; set
// by the -readpath-sizes flag.
var readpathSizesFlag = "10000,100000,1000000"

// readpathResult is one store size's measurement.
type readpathResult struct {
	Responses int `json:"responses"`
	// OldQPS is full-recompute aggregate queries per second
	// (store.Responses + Estimator over the whole slice + JSON encode).
	OldQPS float64 `json:"old_queries_per_sec"`
	// NewQPS is live-accumulator queries per second through the real
	// HTTP handler (catch-up scan + finalize + JSON encode).
	NewQPS  float64 `json:"new_queries_per_sec"`
	Speedup float64 `json:"speedup"`
	// CatchupSeconds is the one-time cost of the first read: scanning
	// the whole backlog into the accumulator (the restart story).
	CatchupSeconds float64 `json:"catchup_seconds"`
}

// readpathReport is the BENCH_readpath.json schema.
type readpathReport struct {
	Schema  int              `json:"schema"`
	Results []readpathResult `json:"results"`
}

// readpathSurvey exercises every accumulator cell kind: two rating
// questions joined by a consistency pair (so the quality tally has work)
// and one multiple-choice question (so debiasing has work).
func readpathSurvey() *survey.Survey {
	return &survey.Survey{
		ID:    "bench-readpath",
		Title: "Read path bench survey",
		Questions: []survey.Question{
			{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "q1", Text: "rate again", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "q2", Text: "pick", Kind: survey.MultipleChoice, Options: []string{"a", "b", "c"}},
		},
		Consistency: []survey.ConsistencyPair{{QuestionA: "q0", QuestionB: "q1", Tolerance: 1}},
		RewardCents: 10,
	}
}

// fillReadpathStore loads n deterministic responses across every privacy
// level.
func fillReadpathStore(st store.Store, sv *survey.Survey, n int) error {
	levels := []string{"none", "low", "medium", "high"}
	for i := 0; i < n; i++ {
		lvl := levels[i%len(levels)]
		rating := float64(1 + i%5)
		// Some none-level responses answer the redundant question 2 apart
		// (beyond the pair's tolerance but inside the scale), so the
		// quality screen has both verdicts to count.
		q1 := rating
		if i%68 == 0 {
			if rating >= 3 {
				q1 = rating - 2
			} else {
				q1 = rating + 2
			}
		}
		r := &survey.Response{
			SurveyID:     sv.ID,
			WorkerID:     fmt.Sprintf("w%07d", i),
			PrivacyLevel: lvl,
			Obfuscated:   lvl != "none",
			Answers: []survey.Answer{
				survey.RatingAnswer("q0", rating),
				survey.RatingAnswer("q1", q1),
				survey.ChoiceAnswer("q2", i%3),
			},
		}
		if err := st.AppendResponse(r); err != nil {
			return err
		}
	}
	return nil
}

// measure runs query until at least minDur or minIters, whichever is
// later, and returns queries/sec.
func measure(minDur time.Duration, minIters int, query func() error) (float64, error) {
	iters := 0
	start := time.Now()
	for time.Since(start) < minDur || iters < minIters {
		if err := query(); err != nil {
			return 0, err
		}
		iters++
	}
	return float64(iters) / time.Since(start).Seconds(), nil
}

// runReadpathBench measures every configured store size and writes the
// report.
func runReadpathBench(sizes []int) error {
	const token = "bench-token"
	report := readpathReport{Schema: 1}
	sv := readpathSurvey()

	for _, n := range sizes {
		st := store.NewMem()
		if err := st.PutSurvey(sv); err != nil {
			return err
		}
		if err := fillReadpathStore(st, sv, n); err != nil {
			return fmt.Errorf("readpath bench: fill %d: %w", n, err)
		}

		// Old path: what the server did before the incremental refactor —
		// materialize the full slice and recompute every estimate.
		est, err := server.BatchEstimator(core.DefaultSchedule())
		if err != nil {
			return err
		}
		oldQPS, err := measure(300*time.Millisecond, 3, func() error {
			responses, err := st.Responses(sv.ID)
			if err != nil {
				return err
			}
			out, err := server.BatchAggregate(est, sv, responses)
			if err != nil {
				return err
			}
			_, err = json.Marshal(out)
			return err
		})
		if err != nil {
			return fmt.Errorf("readpath bench: old path at %d: %w", n, err)
		}

		// New path: the real HTTP handler over a live accumulator. The
		// first query pays the one-time backlog scan (timed separately);
		// every later query is O(1).
		srv, err := server.New(server.Config{Store: st, Schedule: core.DefaultSchedule(), RequesterToken: token})
		if err != nil {
			return err
		}
		query := func() error {
			req := httptest.NewRequest(http.MethodGet, "/api/v1/surveys/"+sv.ID+"/aggregate", nil)
			req.Header.Set("Authorization", "Bearer "+token)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return fmt.Errorf("aggregate HTTP %d: %s", rec.Code, rec.Body.String())
			}
			return nil
		}
		warmStart := time.Now()
		if err := query(); err != nil {
			return fmt.Errorf("readpath bench: catch-up at %d: %w", n, err)
		}
		catchup := time.Since(warmStart)
		newQPS, err := measure(300*time.Millisecond, 50, query)
		if err != nil {
			return fmt.Errorf("readpath bench: new path at %d: %w", n, err)
		}
		st.Close()

		report.Results = append(report.Results, readpathResult{
			Responses:      n,
			OldQPS:         oldQPS,
			NewQPS:         newQPS,
			Speedup:        newQPS / oldQPS,
			CatchupSeconds: catchup.Seconds(),
		})
	}

	fmt.Fprintln(out, "READ PATH — aggregate query throughput, old recompute vs live accumulator")
	for _, r := range report.Results {
		fmt.Fprintf(out, "  %9d stored   old %10.1f q/s   new %10.1f q/s   %8.1fx   (catch-up %.3fs)\n",
			r.Responses, r.OldQPS, r.NewQPS, r.Speedup, r.CatchupSeconds)
	}
	fmt.Fprintln(out)

	if readpathJSONPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(readpathJSONPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("readpath bench: write report: %w", err)
		}
	}
	return nil
}

// parseReadpathSizes parses the -readpath-sizes flag.
func parseReadpathSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("readpath bench: bad size %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
