// Restart benchmark ("restart" experiment id): first-read-after-restart
// latency against a store preloaded with N responses, without checkpoints
// (the first read rescans the whole backlog, O(N)) versus with a durable
// accumulator checkpoint (restore + scan only the tail beyond the
// checkpoint cursor, O(tail) — near-flat across store sizes when the
// checkpoint is fresh). Results are teed to a machine-readable JSON file
// for trajectory tracking.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"loki/internal/checkpoint"
	"loki/internal/core"
	"loki/internal/server"
	"loki/internal/store"
)

// restartJSONPath is where the machine-readable report goes; set by the
// -restart-json flag.
var restartJSONPath = "BENCH_restart.json"

// restartSizesFlag selects the stored-response counts to measure; set by
// the -restart-sizes flag.
var restartSizesFlag = "10000,100000,1000000"

// restartTrials is how many fresh restarts each latency is measured
// over; the minimum is reported (first-read latency is a one-shot
// number, so best-of smooths scheduler noise).
const restartTrials = 3

// restartResult is one store size's measurement.
type restartResult struct {
	Responses int `json:"responses"`
	// ColdFirstReadSeconds is the first /aggregate latency of a server
	// with no checkpoint: the whole-backlog catch-up scan.
	ColdFirstReadSeconds float64 `json:"cold_first_read_seconds"`
	// CheckpointFirstReadSeconds is the first /aggregate latency of a
	// freshly restarted server restoring a checkpoint that covers every
	// stored response (tail = 0).
	CheckpointFirstReadSeconds float64 `json:"checkpoint_first_read_seconds"`
	Speedup                    float64 `json:"speedup"`
	// CheckpointOpenSeconds is the one-per-process cost of replaying the
	// checkpoint log at startup.
	CheckpointOpenSeconds float64 `json:"checkpoint_open_seconds"`
	// CheckpointBytes is the on-disk size of the checkpoint log.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
}

// restartReport is the BENCH_restart.json schema.
type restartReport struct {
	Schema  int             `json:"schema"`
	Results []restartResult `json:"results"`
}

// firstReadSeconds builds nothing and measures exactly one aggregate
// query through the real HTTP handler — for a fresh server, the
// first-read catch-up path.
func firstReadSeconds(srv *server.Server, surveyID, token string) (float64, error) {
	req := httptest.NewRequest(http.MethodGet, "/api/v1/surveys/"+surveyID+"/aggregate", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	rec := httptest.NewRecorder()
	start := time.Now()
	srv.ServeHTTP(rec, req)
	elapsed := time.Since(start).Seconds()
	if rec.Code != http.StatusOK {
		return 0, fmt.Errorf("aggregate HTTP %d: %s", rec.Code, rec.Body.String())
	}
	return elapsed, nil
}

// runRestartBench measures every configured store size and writes the
// report.
func runRestartBench(sizes []int) error {
	const token = "bench-token"
	report := restartReport{Schema: 1}
	sv := readpathSurvey()

	for _, n := range sizes {
		st := store.NewMem()
		if err := st.PutSurvey(sv); err != nil {
			return err
		}
		if err := fillReadpathStore(st, sv, n); err != nil {
			return fmt.Errorf("restart bench: fill %d: %w", n, err)
		}

		dir, err := os.MkdirTemp("", "loki-restart-bench-")
		if err != nil {
			return err
		}

		res, err := measureRestart(st, dir, sv.ID, token, n)
		os.RemoveAll(dir)
		st.Close()
		if err != nil {
			return err
		}
		report.Results = append(report.Results, *res)
	}

	fmt.Fprintln(out, "RESTART — first aggregate read after a restart, whole-backlog rescan vs checkpoint restore + tail scan")
	for _, r := range report.Results {
		fmt.Fprintf(out, "  %9d stored   cold %9.2fms   checkpointed %9.3fms   %8.1fx   (log open %.3fms, %d bytes)\n",
			r.Responses, r.ColdFirstReadSeconds*1e3, r.CheckpointFirstReadSeconds*1e3,
			r.Speedup, r.CheckpointOpenSeconds*1e3, r.CheckpointBytes)
	}
	fmt.Fprintln(out)

	if restartJSONPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(restartJSONPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("restart bench: write report: %w", err)
		}
	}
	return nil
}

// measureRestart takes one checkpoint covering the full store, then
// measures cold and checkpointed first-read latency over fresh server
// instances (each trial is a genuine restart: empty live state, replayed
// checkpoint log).
func measureRestart(st store.Store, dir, surveyID, token string, n int) (*restartResult, error) {
	// Warm run: catch up once, checkpoint, shut down cleanly.
	ck, err := checkpoint.Open(dir)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{
		Store: st, Schedule: core.DefaultSchedule(), RequesterToken: token,
		Checkpoints: ck, CheckpointInterval: time.Hour,
	})
	if err != nil {
		return nil, err
	}
	if _, err := firstReadSeconds(srv, surveyID, token); err != nil {
		return nil, fmt.Errorf("restart bench: warm catch-up at %d: %w", n, err)
	}
	if err := srv.Close(); err != nil { // final flush writes the checkpoint
		return nil, err
	}
	if err := ck.Close(); err != nil {
		return nil, err
	}
	// The log is a directory of per-survey files now; sum them.
	var ckptBytes int64
	_ = filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			if fi, ferr := d.Info(); ferr == nil {
				ckptBytes += fi.Size()
			}
		}
		return nil
	})

	res := &restartResult{Responses: n, CheckpointBytes: ckptBytes}
	for trial := 0; trial < restartTrials; trial++ {
		// Cold restart: no checkpoint log, first read rescans everything.
		srvCold, err := server.New(server.Config{Store: st, Schedule: core.DefaultSchedule(), RequesterToken: token})
		if err != nil {
			return nil, err
		}
		cold, err := firstReadSeconds(srvCold, surveyID, token)
		if err != nil {
			return nil, fmt.Errorf("restart bench: cold read at %d: %w", n, err)
		}

		// Checkpointed restart: replay the log, restore, scan the tail
		// (empty here — the checkpoint is fresh).
		openStart := time.Now()
		ck2, err := checkpoint.Open(dir)
		if err != nil {
			return nil, err
		}
		openSecs := time.Since(openStart).Seconds()
		srvWarm, err := server.New(server.Config{
			Store: st, Schedule: core.DefaultSchedule(), RequesterToken: token,
			Checkpoints: ck2, CheckpointInterval: time.Hour,
		})
		if err != nil {
			return nil, err
		}
		warm, err := firstReadSeconds(srvWarm, surveyID, token)
		if err != nil {
			return nil, fmt.Errorf("restart bench: checkpointed read at %d: %w", n, err)
		}
		if err := srvWarm.Close(); err != nil {
			return nil, err
		}
		if err := ck2.Close(); err != nil {
			return nil, err
		}

		if trial == 0 || cold < res.ColdFirstReadSeconds {
			res.ColdFirstReadSeconds = cold
		}
		if trial == 0 || warm < res.CheckpointFirstReadSeconds {
			res.CheckpointFirstReadSeconds = warm
		}
		if trial == 0 || openSecs < res.CheckpointOpenSeconds {
			res.CheckpointOpenSeconds = openSecs
		}
	}
	res.Speedup = res.ColdFirstReadSeconds / res.CheckpointFirstReadSeconds
	return res, nil
}
