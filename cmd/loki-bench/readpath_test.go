package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunReadpathBench smoke-tests the read-path harness on tiny store
// sizes and checks the JSON report is well-formed.
func TestRunReadpathBench(t *testing.T) {
	silence(t)
	prevPath := readpathJSONPath
	t.Cleanup(func() { readpathJSONPath = prevPath })
	readpathJSONPath = filepath.Join(t.TempDir(), "BENCH_readpath.json")

	if err := runReadpathBench([]int{300, 900}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(readpathJSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var report readpathReport
	if err := json.Unmarshal(b, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != 1 {
		t.Fatalf("schema = %d, want 1", report.Schema)
	}
	if len(report.Results) != 2 {
		t.Fatalf("%d results, want 2", len(report.Results))
	}
	for _, r := range report.Results {
		if r.OldQPS <= 0 || r.NewQPS <= 0 {
			t.Fatalf("nonpositive rate at %d responses: %+v", r.Responses, r)
		}
		if r.Speedup <= 0 {
			t.Fatalf("nonpositive speedup at %d responses", r.Responses)
		}
	}
}

func TestParseReadpathSizes(t *testing.T) {
	sizes, err := parseReadpathSizes("10, 200,3000")
	if err != nil || len(sizes) != 3 || sizes[0] != 10 || sizes[2] != 3000 {
		t.Fatalf("sizes = %v, err %v", sizes, err)
	}
	for _, bad := range []string{"", "x", "10,,20", "-5"} {
		if _, err := parseReadpathSizes(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
