// Failover fault injection for the cluster benchmark (-kill-node): one
// node owning every shard, a replica tailing it, and a manifest-routed
// frontend with the failure detector and a placement watcher — the full
// HA wiring loki-server assembles. Mid-run the node's listener starts
// tearing connections down (what a dead process looks like on the
// wire), and the bench measures the availability timeline the tentpole
// promises: reads keep answering through the replica, the detector
// marks the primary down, the replica's failover lease promotes it (and
// rewrites the shared manifest), and submits resume once the frontend
// applies the new routing. The run fails — CI-visibly — if reads ever
// black out, if submits never recover, or if the post-failover merged
// aggregate diverges from a single accumulator folded over the
// cluster's actual records.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"loki/internal/core"
	"loki/internal/placement"
	"loki/internal/server"
	"loki/internal/shardrpc"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// clusterKillNode is the -kill-node flag (registered in main.go).
var clusterKillNode = false

// Failover timing knobs. Tight on purpose: the bench measures the
// timeline in units of these, and CI runs it with small counts.
const (
	failoverProbeInterval = 50 * time.Millisecond
	failoverProbeTimeout  = 250 * time.Millisecond
	failoverPollInterval  = 25 * time.Millisecond
	failoverWatchInterval = 25 * time.Millisecond
	failoverPromoteAfter  = 250 * time.Millisecond
)

// failoverResult is the -kill-node section of BENCH_cluster.json: the
// availability timeline (milliseconds after the kill) plus the
// read/submit availability counts through the failover window.
type failoverResult struct {
	Shards             int     `json:"shards"`
	ProbeMillis        float64 `json:"probe_millis"`
	PromoteAfterMillis float64 `json:"promote_after_millis"`
	// FirstReadMillis: kill → first merged read answered (served by the
	// replica inside the same request that found the primary dead).
	FirstReadMillis float64 `json:"first_read_millis"`
	// DetectMillis: kill → the frontend's failure detector reporting the
	// primary down on the health surface.
	DetectMillis float64 `json:"detect_millis"`
	// PromoteMillis: kill → the shared manifest naming the replica
	// primary for every shard (lease-driven self-promotion).
	PromoteMillis float64 `json:"promote_millis"`
	// SubmitRecoveryMillis: kill → first accepted submit (the frontend
	// has applied the rewritten manifest and routes to the new primary).
	SubmitRecoveryMillis float64 `json:"submit_recovery_millis"`
	// Availability through the window: every read probe during failover
	// must succeed (ReadFailures stays 0 — that is the CI gate), submits
	// refuse with retryable 503s until promotion lands.
	ReadsDuringFailover int    `json:"reads_during_failover"`
	ReadFailures        int    `json:"read_failures"`
	SubmitsRefused      int    `json:"submits_refused"`
	SubmitsRecovered    int    `json:"submits_recovered"`
	StaleReads          uint64 `json:"stale_reads"`
	// Equivalent: after recovery and a second submit phase, the merged
	// aggregate equals one accumulator folded over the cluster's actual
	// post-failover records.
	Equivalent bool `json:"equivalent"`
}

// swapHandler lets the bench "kill" and revive a node behind a stable
// URL by swapping what its listener serves.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

// deadNodeHandler tears every connection down before a byte of response
// is written: clients observe transport errors, exactly like a crashed
// process, never an HTTP status.
type deadNodeHandler struct{}

func (deadNodeHandler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("bench server does not support hijacking")
	}
	if conn, _, err := hj.Hijack(); err == nil {
		conn.Close()
	}
}

// submitProbe pushes one response through the frontend and classifies
// the answer: accepted, retryable refusal (the failover vocabulary), or
// an unexpected status.
func submitProbe(h http.Handler, sv *survey.Survey, i int) (accepted bool, retryable bool, err error) {
	body, err := json.Marshal(clusterResponse(sv, i))
	if err != nil {
		return false, false, err
	}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/surveys/"+sv.ID+"/responses", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	switch rec.Code {
	case http.StatusCreated:
		return true, false, nil
	case http.StatusServiceUnavailable:
		if rec.Header().Get("Retry-After") == "" {
			return false, false, fmt.Errorf("failover bench: 503 without Retry-After: %s", rec.Body.String())
		}
		return false, true, nil
	default:
		return false, false, fmt.Errorf("failover bench: submit %d: HTTP %d: %s", i, rec.Code, rec.Body.String())
	}
}

// runFailoverBench executes the kill-node scenario and returns its
// report section; any broken availability guarantee is an error.
func runFailoverBench() (*failoverResult, error) {
	sv := clusterSurvey()
	phase1 := clusterResponses
	phase2 := clusterResponses / 2
	if phase2 == 0 {
		phase2 = 1
	}
	dir, err := os.MkdirTemp("", "loki-bench-failover-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// The node: journaled in-memory shard stores (this scenario measures
	// availability, not fsync throughput) serving the public API and
	// shardrpc on one listener, like a production node.
	stores := make([]store.Store, clusterShards)
	globals := make([]int, clusterShards)
	for i := range stores {
		stores[i] = store.NewMem()
		globals[i] = i
	}
	local, err := shardset.NewLocal(stores, shardset.LocalOptions{GlobalIDs: globals, Journal: true})
	if err != nil {
		return nil, err
	}
	defer local.Close()
	nsrv, err := server.New(server.Config{
		Router: local, Schedule: core.DefaultSchedule(),
		RequesterToken: clusterToken, Role: "node",
	})
	if err != nil {
		return nil, err
	}
	defer nsrv.Close()
	node, err := server.NewNode(nsrv, clusterShards)
	if err != nil {
		return nil, err
	}
	rpc, err := shardrpc.NewHandler(node, clusterToken)
	if err != nil {
		return nil, err
	}
	nodeMux := http.NewServeMux()
	nodeMux.Handle("/shardrpc/", rpc)
	nodeMux.Handle("/", nsrv)
	nodeSW := &swapHandler{h: nodeMux}
	nts := httptest.NewServer(nodeSW)
	defer nts.Close()

	// The replica: started behind its own stable URL (the manifest names
	// it), serving the read-only public API and shardrpc, with the
	// failover lease armed.
	repSW := &swapHandler{h: http.NotFoundHandler()}
	rts := httptest.NewServer(repSW)
	defer rts.Close()
	manifestPath := filepath.Join(dir, "manifest.json")
	rep, err := server.NewReplica(server.ReplicaConfig{
		Client:         shardrpc.NewClient(nts.URL, clusterToken, nil),
		Schedule:       core.DefaultSchedule(),
		RequesterToken: clusterToken,
		PollInterval:   failoverPollInterval,
		FollowerID:     "bench-failover",
		ManifestPath:   manifestPath,
		SelfURL:        rts.URL,
		PromoteAfter:   failoverPromoteAfter,
	})
	if err != nil {
		return nil, err
	}
	defer rep.Close()
	repRPC, err := shardrpc.NewHandler(rep, clusterToken)
	if err != nil {
		return nil, err
	}
	repMux := http.NewServeMux()
	repMux.Handle("/shardrpc/", repRPC)
	repMux.Handle("/", rep)
	repSW.swap(repMux)

	// The shared manifest, and the node's view of it.
	m, err := placement.RoundRobin(clusterShards, []string{nts.URL})
	if err != nil {
		return nil, err
	}
	for i := range m.Shards {
		m.Shards[i].Replicas = []string{rts.URL}
	}
	if err := m.Save(manifestPath); err != nil {
		return nil, err
	}
	node.ApplyManifest(m, nts.URL)

	// The frontend: manifest routing, active prober, watcher-driven
	// reloads, fenced-write fast re-poll — the loki-server wiring.
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clusterWorkers * 2}}
	remote, err := shardrpc.NewRemoteFromManifest(m, clusterToken, hc)
	if err != nil {
		return nil, err
	}
	defer remote.Close()
	watcher, err := placement.Watch(manifestPath, failoverWatchInterval, func(mm *placement.Manifest) {
		_ = remote.ApplyManifest(mm)
	})
	if err != nil {
		return nil, err
	}
	defer watcher.Close()
	remote.OnFenced(watcher.Poll)
	remote.EnableFailover(shardrpc.FailoverOptions{
		ProbeInterval: failoverProbeInterval,
		ProbeTimeout:  failoverProbeTimeout,
	})
	frontend, err := server.New(server.Config{
		Router: remote, Schedule: core.DefaultSchedule(),
		RequesterToken: clusterToken, Role: "frontend",
		FrontendCacheTTL: -1,
	})
	if err != nil {
		return nil, err
	}
	defer frontend.Close()
	if err := remote.PutSurvey(sv); err != nil {
		return nil, err
	}

	// Phase 1: load through the healthy cluster, then wait for the
	// replica to catch up (it is about to become the data's only home).
	if _, _, err := driveSubmits(frontend, sv, 0, phase1); err != nil {
		return nil, fmt.Errorf("failover bench: phase-1 submits: %w", err)
	}
	repClient := shardrpc.NewClient(rts.URL, clusterToken, nil)
	caughtUp := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		total := 0
		for s := 0; s < clusterShards; s++ {
			n, err := repClient.Count(s, sv.ID)
			if err != nil {
				break
			}
			total += n
		}
		if total == phase1 {
			caughtUp = true
			break
		}
		time.Sleep(failoverPollInterval)
	}
	if !caughtUp {
		return nil, fmt.Errorf("failover bench: replica never caught up to %d records", phase1)
	}

	// The kill. From here every probe is timestamped against killAt.
	killAt := time.Now()
	nodeSW.swap(deadNodeHandler{})

	res := &failoverResult{
		Shards:             clusterShards,
		ProbeMillis:        float64(failoverProbeInterval) / 1e6,
		PromoteAfterMillis: float64(failoverPromoteAfter) / 1e6,
	}
	var firstReadAt, detectAt, promoteAt, recoverAt time.Time
	probeI := phase1 + 1_000_000 // probe submits use their own worker-id space
	consecutiveOK := 0
	for deadline := killAt.Add(20 * time.Second); ; {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("failover bench: no full recovery within %s (detect %v promote %v submit %v)",
				20*time.Second, !detectAt.IsZero(), !promoteAt.IsZero(), !recoverAt.IsZero())
		}
		// Read availability: the merged aggregate must answer on every
		// probe — the primary's death is absorbed inside the request by
		// the replica fallback.
		if _, err := fetchAggregate(frontend, sv.ID); err == nil {
			res.ReadsDuringFailover++
			if firstReadAt.IsZero() {
				firstReadAt = time.Now()
			}
		} else {
			res.ReadFailures++
		}
		// Detection: the frontend's failure detector flags the primary.
		if detectAt.IsZero() {
			if fi := remote.FailoverInfo(); fi != nil {
				for _, sh := range fi.Shards {
					if sh.PrimaryDown {
						detectAt = time.Now()
						break
					}
				}
			}
		}
		// Promotion: the manifest names the replica primary everywhere.
		if promoteAt.IsZero() {
			if mm, err := placement.Load(manifestPath); err == nil {
				all := true
				for s := 0; s < clusterShards; s++ {
					if sp := mm.Placement(s); sp == nil || sp.Primary != rts.URL {
						all = false
						break
					}
				}
				if all {
					promoteAt = time.Now()
				}
			}
		}
		// Submit availability: refusals must be the retryable 503 shape;
		// acceptance marks recovery.
		accepted, retryable, err := submitProbe(frontend, sv, probeI)
		probeI++
		switch {
		case err != nil:
			return nil, err
		case accepted:
			res.SubmitsRecovered++
			consecutiveOK++
			if recoverAt.IsZero() {
				recoverAt = time.Now()
			}
		case retryable:
			res.SubmitsRefused++
			consecutiveOK = 0
		}
		// Done once the whole timeline is observed and submits are
		// landing across the shard space (worker IDs hash over shards, so
		// a run of acceptances means every shard's route recovered).
		if !detectAt.IsZero() && !promoteAt.IsZero() && consecutiveOK >= 2*clusterShards {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	res.FirstReadMillis = float64(firstReadAt.Sub(killAt)) / 1e6
	res.DetectMillis = float64(detectAt.Sub(killAt)) / 1e6
	res.PromoteMillis = float64(promoteAt.Sub(killAt)) / 1e6
	res.SubmitRecoveryMillis = float64(recoverAt.Sub(killAt)) / 1e6
	res.StaleReads = remote.StaleReads()

	// The availability gates.
	if res.ReadsDuringFailover == 0 {
		return nil, fmt.Errorf("failover bench: zero successful reads through the failover window")
	}
	if res.ReadFailures > 0 {
		return nil, fmt.Errorf("failover bench: %d of %d reads failed during failover — replica fallback did not hold",
			res.ReadFailures, res.ReadFailures+res.ReadsDuringFailover)
	}
	if res.StaleReads == 0 {
		return nil, fmt.Errorf("failover bench: no read was served by the replica — the kill never bit")
	}

	// The promotion is observed in the manifest FILE; the frontend's
	// watcher may lag it by one poll. Phase 2 expects every submit to
	// land, so wait until the applied routing caught up.
	final, err := placement.Load(manifestPath)
	if err != nil {
		return nil, err
	}
	for deadline := time.Now().Add(5 * time.Second); remote.ManifestVersion() < final.Version; {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("failover bench: frontend never applied manifest v%d (at v%d)",
				final.Version, remote.ManifestVersion())
		}
		time.Sleep(failoverWatchInterval)
	}

	// Phase 2: steady state on the promoted replica, then the
	// equivalence check the tentpole's acceptance names: the merged
	// aggregate must equal a single accumulator folded over the
	// cluster's actual post-failover records (what the promoted replica
	// holds — asynchronous replication's contract, not the submit
	// attempt log).
	if _, _, err := driveSubmits(frontend, sv, 2_000_000, phase2); err != nil {
		return nil, fmt.Errorf("failover bench: phase-2 submits: %w", err)
	}
	wantCount := phase1 + res.SubmitsRecovered + phase2
	if got := shardset.Count(remote, sv.ID); got != wantCount {
		return nil, fmt.Errorf("failover bench: cluster holds %d records, want %d (accepted submits lost?)", got, wantCount)
	}
	est, err := server.BatchEstimator(core.DefaultSchedule())
	if err != nil {
		return nil, err
	}
	var rs []survey.Response
	if _, err := shardset.ScanMerged(remote, sv.ID, nil, func(_ int, _ uint64, resp *survey.Response) error {
		rs = append(rs, *resp)
		return nil
	}); err != nil {
		return nil, err
	}
	ref, err := server.BatchAggregate(est, sv, rs)
	if err != nil {
		return nil, err
	}
	agg, err := fetchAggregate(frontend, sv.ID)
	if err != nil {
		return nil, err
	}
	if len(agg.DegradedShards) != 0 {
		return nil, fmt.Errorf("failover bench: post-recovery read still degraded: %v", agg.DegradedShards)
	}
	if err := aggregatesEquivalent(agg, ref); err != nil {
		return nil, fmt.Errorf("failover bench: post-failover merged read diverged from the single-accumulator fold: %w", err)
	}
	res.Equivalent = true
	return res, nil
}
