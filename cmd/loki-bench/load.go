// Open-loop load benchmark ("load" experiment id): population-scale
// arrival pressure against a real cluster topology with admission
// control on.
//
// Unlike the closed-loop benches (ingest, cluster, budget), where a
// fixed worker pool waits for each response before sending the next —
// so offered load self-throttles to whatever the system sustains —
// this bench generates arrivals on a Poisson clock that does not care
// how the server is doing. Simulated respondents drawn from the
// population behavior models submit through the batching client
// pipeline; the arrival rate is swept below, at, and above the
// system's calibrated capacity. Below saturation the numbers describe
// latency; above it they describe the overload contract: admitted
// requests keep a bounded p99, the excess is shed with 429 +
// Retry-After, and neither the server's queue depth nor the process
// goroutine count grows monotonically through the overload window —
// the run fails if either does, or (with -load-expect-shed) if the
// shed path never fired. Results are teed to BENCH_load.json.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"loki/internal/client"
	"loki/internal/core"
	"loki/internal/population"
	"loki/internal/rng"
	"loki/internal/server"
	"loki/internal/shardrpc"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// Flags (registered in main.go).
var (
	loadJSONPath = "BENCH_load.json"
	// loadRatesFlag overrides the swept arrival rates (responses/sec);
	// empty auto-calibrates to 0.5x / 1x / 1.5x of closed-loop capacity.
	loadRatesFlag  = ""
	loadDuration   = 3 * time.Second
	loadNodes      = 2
	loadQueue      = 256
	loadInflight   = 64
	loadExpectShed = false
	// loadClients is how many independent batching pipelines the
	// arrival stream spreads over — the "many phones" in front of one
	// service. One pipeline's own inflight bound would backpressure
	// client-side and the overload would never reach the server's
	// admission queue.
	loadClients = 32
)

// loadResult is one arrival rate's measurement.
type loadResult struct {
	// OfferedRPS is the Poisson arrival rate; Arrivals how many the
	// clock actually produced in DurationSecs.
	OfferedRPS   float64 `json:"offered_rps"`
	DurationSecs float64 `json:"duration_secs"`
	Arrivals     int     `json:"arrivals"`
	// Acked were durably stored; Shed were refused with the retryable
	// 429 vocabulary (admission shed or rate limit); Failed is
	// everything else and must stay zero.
	Acked  int `json:"acked"`
	Shed   int `json:"shed,omitempty"`
	Failed int `json:"failed,omitempty"`
	// AchievedRPS is acked arrivals per second; ShedRate the shed
	// fraction of arrivals.
	AchievedRPS float64 `json:"achieved_rps"`
	ShedRate    float64 `json:"shed_rate"`
	// Latency covers admitted (acked) requests only, enqueue to
	// durable ack through the batching pipeline.
	Latency latencySummary `json:"latency"`
	// MaxGoroutines and MaxQueueDepth are the monitor's high-water
	// samples over the window (the boundedness evidence).
	MaxGoroutines int `json:"max_goroutines"`
	MaxQueueDepth int `json:"max_queue_depth"`
	// Sustainable marks a rate the system kept up with: under 1% shed
	// and at least 90% of the offered rate acked.
	Sustainable bool `json:"sustainable"`
}

// loadContext records what the numbers were measured against.
type loadContext struct {
	GOOS           string  `json:"goos"`
	NumCPU         int     `json:"num_cpu"`
	Nodes          int     `json:"nodes"`
	Shards         int     `json:"shards"`
	SubmitQueue    int     `json:"submit_queue"`
	SubmitInflight int     `json:"submit_inflight"`
	DurationSecs   float64 `json:"duration_secs"`
	Population     int     `json:"population"`
	// Clients is how many independent batching pipelines carried the
	// arrival stream.
	Clients int `json:"clients"`
	// ShardDevices maps each per-shard store directory to the device
	// it fsyncs on; SingleFsyncDevice reports they all share one (true
	// for this in-process run — parallel shard fsyncs serialize on one
	// filesystem journal, so the capacity here is a floor for
	// deployments with per-node disks).
	ShardDevices      map[string]string `json:"shard_devices"`
	SingleFsyncDevice bool              `json:"single_fsync_device"`
	Note              string            `json:"note"`
}

// loadReport is the BENCH_load.json schema.
type loadReport struct {
	Schema  int         `json:"schema"`
	Context loadContext `json:"context"`
	// CalibratedRPS is the closed-loop capacity estimate the swept
	// rates were derived from (0 when -load-rates pinned them).
	CalibratedRPS float64 `json:"calibrated_rps,omitempty"`
	// MaxSustainableRPS is the highest offered rate the system kept up
	// with (see loadResult.Sustainable).
	MaxSustainableRPS float64      `json:"max_sustainable_rps"`
	Results           []loadResult `json:"results"`
}

// loadHarness is one running cluster topology: nodes with per-shard
// file stores behind a frontend with admission control, the frontend
// served over real HTTP for the batching client.
type loadHarness struct {
	ts        *httptest.Server
	frontend  http.Handler
	shardDirs map[string]string // shard store path -> device id
	closers   []func() error
}

func (h *loadHarness) close() {
	h.ts.Close()
	for i := len(h.closers) - 1; i >= 0; i-- {
		_ = h.closers[i]()
	}
}

// newLoadHarness builds the topology. Admission control guards the
// frontend's public submit path; queue <= 0 disables it (calibration).
func newLoadHarness(dir string, sv *survey.Survey, nodes, queue, inflight int) (*loadHarness, error) {
	h := &loadHarness{shardDirs: map[string]string{}}
	fail := func(err error) (*loadHarness, error) {
		for i := len(h.closers) - 1; i >= 0; i-- {
			_ = h.closers[i]()
		}
		return nil, err
	}
	owned := shardrpc.RoundRobinPlacement(clusterShards, nodes)
	clients := make([]*shardrpc.Client, nodes)
	for n := 0; n < nodes; n++ {
		stores := make([]store.Store, len(owned[n]))
		for i, g := range owned[n] {
			path := filepath.Join(dir, fmt.Sprintf("node%d-gshard%03d.jsonl", n, g))
			st, err := store.OpenFile(path)
			if err != nil {
				return fail(err)
			}
			h.closers = append(h.closers, st.Close)
			stores[i] = st
			h.shardDirs[filepath.Base(path)] = deviceID(dir)
		}
		local, err := shardset.NewLocal(stores, shardset.LocalOptions{GlobalIDs: owned[n], Journal: true})
		if err != nil {
			return fail(err)
		}
		srv, err := server.New(server.Config{
			Router: local, Schedule: core.DefaultSchedule(),
			RequesterToken: clusterToken, Role: "node",
		})
		if err != nil {
			return fail(err)
		}
		h.closers = append(h.closers, srv.Close)
		node, err := server.NewNode(srv, clusterShards)
		if err != nil {
			return fail(err)
		}
		rpc, err := shardrpc.NewHandler(node, clusterToken)
		if err != nil {
			return fail(err)
		}
		nts := httptest.NewServer(rpc)
		h.closers = append(h.closers, func() error { nts.Close(); return nil })
		hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2 * inflight}}
		clients[n] = shardrpc.NewClient(nts.URL, clusterToken, hc)
	}
	remote, err := shardrpc.NewRemoteRoundRobin(clients, clusterShards)
	if err != nil {
		return fail(err)
	}
	fcfg := server.Config{
		Router: remote, Schedule: core.DefaultSchedule(),
		RequesterToken: clusterToken, Role: "frontend",
		FrontendCacheTTL: -1,
	}
	if queue > 0 {
		fcfg.SubmitQueue = queue
		fcfg.SubmitInflight = inflight
	}
	frontend, err := server.New(fcfg)
	if err != nil {
		return fail(err)
	}
	h.closers = append(h.closers, frontend.Close)
	if err := remote.PutSurvey(sv); err != nil {
		return fail(err)
	}
	h.frontend = frontend
	h.ts = httptest.NewServer(frontend)
	return h, nil
}

// queueDepth samples the frontend's admission queue via the admin
// surface (0 with admission off).
func (h *loadHarness) queueDepth() int {
	req := httptest.NewRequest(http.MethodGet, "/api/v1/admin/store", nil)
	req.Header.Set("Authorization", "Bearer "+clusterToken)
	rec := httptest.NewRecorder()
	h.frontend.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return 0
	}
	var info server.AdminStoreInfo
	if json.Unmarshal(rec.Body.Bytes(), &info) != nil || info.Admission == nil {
		return 0
	}
	return info.Admission.QueueDepth
}

// loadResponses pre-builds n uploads from the population behavior
// models: each arrival is a person answering the survey per their
// response behavior (truthful from attributes, random responders
// uniformly), at a cycling privacy level, under a per-arrival worker id
// so placement spreads across shards.
func loadResponses(sv *survey.Survey, pop *population.Population, n int, r *rng.RNG) ([]*survey.Response, error) {
	levels := []string{"none", "low", "medium", "high"}
	out := make([]*survey.Response, n)
	for i := 0; i < n; i++ {
		p := &pop.Persons[i%pop.Size()]
		answers, err := population.Answers(p, sv, r)
		if err != nil {
			return nil, err
		}
		lvl := levels[i%len(levels)]
		out[i] = &survey.Response{
			SurveyID:     sv.ID,
			WorkerID:     fmt.Sprintf("p%05d-%07d", i%pop.Size(), i),
			PrivacyLevel: lvl,
			Obfuscated:   lvl != "none",
			Answers:      answers,
		}
	}
	return out, nil
}

// newLoadSubmitter builds the batching pipeline for one run.
// MaxAttempts=1 turns a shed into a fast per-record failure — exactly
// what an open-loop generator needs, since retrying inside the pipeline
// would re-offer load the server just asked us not to send.
func newLoadSubmitter(baseURL string, seed uint64) (*client.Submitter, error) {
	c, err := client.New(client.Config{
		BaseURL: baseURL, Schedule: core.DefaultSchedule(), Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	// The 25ms linger is load-bearing: with the arrival stream spread
	// over loadClients pipelines, a shorter wait ships near-empty
	// batches and the request rate (not the record rate) becomes what
	// saturates admission.
	return c.NewSubmitter(client.SubmitterConfig{
		MaxBatch: 64, MaxWait: 25 * time.Millisecond, MaxInflight: 16,
		MaxAttempts: 1, Seed: seed,
	}), nil
}

// calibrateLoad estimates closed-loop capacity through the same
// batching pipeline: a bounded worker pool submits flat-out, so the
// result is what the open-loop sweep should straddle.
func calibrateLoad(baseURL string, responses []*survey.Response) (float64, error) {
	sub, err := newLoadSubmitter(baseURL, 7)
	if err != nil {
		return 0, err
	}
	defer sub.Close()
	// Deep enough that full batches are always in flight: with fewer
	// waiters than MaxBatch x MaxInflight the pipeline ships partial
	// batches and the estimate lands well under true capacity, which
	// would make the "above saturation" sweep point not saturate.
	const workers = 256
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan *survey.Response, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				out, err := sub.SubmitWait(context.Background(), r)
				if err == nil {
					err = out.Err
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	for _, r := range responses {
		next <- r
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, fmt.Errorf("load bench: calibration: %w", firstErr)
	}
	return float64(len(responses)) / elapsed.Seconds(), nil
}

// boundedOrErr rejects a sample series that grew monotonically from
// start to finish — the signature of an unbounded queue or goroutine
// leak that admission control exists to prevent. Noise-tolerant: only
// a series that never once decreased AND ended meaningfully above its
// start trips it.
func boundedOrErr(samples []int, what string, offered float64) error {
	if len(samples) < 4 {
		return nil
	}
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			return nil
		}
	}
	first, last := samples[0], samples[len(samples)-1]
	if last <= first+8 {
		return nil
	}
	return fmt.Errorf("load bench: %s grew monotonically %d -> %d through the %.0f rps window (unbounded growth under overload)",
		what, first, last, offered)
}

// runLoadWindow drives one open-loop window at the given arrival rate:
// a Poisson clock releases pre-built responses into the batching
// pipeline regardless of how the server is keeping up, and a monitor
// samples goroutine count and admission queue depth for the
// boundedness gate.
func runLoadWindow(h *loadHarness, responses []*survey.Response, rate float64, duration time.Duration, seed uint64) (loadResult, error) {
	subs := make([]*client.Submitter, loadClients)
	for i := range subs {
		sub, err := newLoadSubmitter(h.ts.URL, seed+uint64(i))
		if err != nil {
			for _, s := range subs[:i] {
				s.Close()
			}
			return loadResult{}, err
		}
		subs[i] = sub
	}

	var mu sync.Mutex
	var acked, shed, failed int
	var firstFail error
	var lat latencyRecorder
	var wg sync.WaitGroup

	// Monitor: sample until the run (arrivals + drain) finishes.
	monDone := make(chan struct{})
	var goroutines, depths []int
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-monDone:
				return
			case <-tick.C:
				goroutines = append(goroutines, runtime.NumGoroutine())
				depths = append(depths, h.queueDepth())
			}
		}
	}()

	r := rng.New(seed ^ 0x9e3779b97f4a7c15)
	start := time.Now()
	deadline := start.Add(duration)
	next := start
	arrivals := 0
	for {
		next = next.Add(time.Duration(r.Exponential(rate) * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		resp := responses[arrivals%len(responses)]
		sub := subs[arrivals%loadClients]
		arrivals++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			out, err := sub.SubmitWait(context.Background(), resp)
			if err == nil {
				err = out.Err
			}
			d := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			var te *client.ThrottleError
			switch {
			case err == nil:
				acked++
				lat.observe(d)
			case errors.As(err, &te):
				shed++
			default:
				failed++
				if firstFail == nil {
					firstFail = err
				}
			}
		}()
	}
	wg.Wait()
	for _, sub := range subs {
		sub.Close()
	}
	elapsed := time.Since(start)
	close(monDone)
	monWG.Wait()

	if firstFail != nil {
		return loadResult{}, fmt.Errorf("load bench: %.0f rps window: %d non-shed failures, first: %w", rate, failed, firstFail)
	}
	if err := boundedOrErr(goroutines, "goroutine count", rate); err != nil {
		return loadResult{}, err
	}
	if err := boundedOrErr(depths, "admission queue depth", rate); err != nil {
		return loadResult{}, err
	}
	res := loadResult{
		OfferedRPS:   rate,
		DurationSecs: elapsed.Seconds(),
		Arrivals:     arrivals,
		Acked:        acked,
		Shed:         shed,
		Failed:       failed,
		AchievedRPS:  float64(acked) / elapsed.Seconds(),
		Latency:      lat.summarize(),
	}
	maxOf := func(s []int) int {
		m := 0
		for _, v := range s {
			if v > m {
				m = v
			}
		}
		return m
	}
	res.MaxGoroutines = maxOf(goroutines)
	res.MaxQueueDepth = maxOf(depths)
	if arrivals > 0 {
		res.ShedRate = float64(shed) / float64(arrivals)
		res.Sustainable = res.ShedRate < 0.01 && res.AchievedRPS >= 0.9*rate
	}
	return res, nil
}

// runLoadBench calibrates (unless -load-rates pinned the sweep), runs
// every window against a fresh admission-controlled topology, and
// writes the report.
func runLoadBench() error {
	sv := clusterSurvey()
	sv.ID = "bench-load"
	pr := rng.New(42)
	cfg := populationConfig()
	pop, err := population.Generate(cfg, pr)
	if err != nil {
		return err
	}

	var rates []float64
	var calibrated float64
	if loadRatesFlag != "" {
		if rates, err = parseLoadRates(loadRatesFlag); err != nil {
			return err
		}
	}

	// A fixed response pool is plenty: arrivals cycle through it, and
	// the server treats every arrival as a distinct worker.
	poolSize := 20000
	responses, err := loadResponses(sv, pop, poolSize, pr)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "loki-bench-load-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	if rates == nil {
		// Calibrate closed-loop on an identical topology without
		// admission control, then straddle saturation.
		calDir := filepath.Join(dir, "calibrate")
		if err := os.MkdirAll(calDir, 0o755); err != nil {
			return err
		}
		ch, err := newLoadHarness(calDir, sv, loadNodes, 0, loadInflight)
		if err != nil {
			return err
		}
		n := len(responses) / 4
		calibrated, err = calibrateLoad(ch.ts.URL, responses[:n])
		ch.close()
		if err != nil {
			return err
		}
		rates = []float64{0.5 * calibrated, calibrated, 1.5 * calibrated}
	}

	runDir := filepath.Join(dir, "run")
	if err := os.MkdirAll(runDir, 0o755); err != nil {
		return err
	}
	h, err := newLoadHarness(runDir, sv, loadNodes, loadQueue, loadInflight)
	if err != nil {
		return err
	}
	defer h.close()

	devices := map[string]bool{}
	for _, dev := range h.shardDirs {
		devices[dev] = true
	}
	report := loadReport{
		Schema:        1,
		CalibratedRPS: calibrated,
		Context: loadContext{
			GOOS: runtime.GOOS, NumCPU: runtime.NumCPU(),
			Nodes: loadNodes, Shards: clusterShards,
			SubmitQueue: loadQueue, SubmitInflight: loadInflight,
			DurationSecs: loadDuration.Seconds(), Population: pop.Size(),
			Clients:           loadClients,
			ShardDevices:      h.shardDirs,
			SingleFsyncDevice: len(devices) == 1,
			Note: "open-loop Poisson arrivals through the batching client against an admission-controlled frontend; " +
				"every shard store fsyncs to one device in this in-process run, so the saturation point is a floor — " +
				"per-node disks raise capacity but not the shape of the overload contract (bounded p99 for admitted, 429 for the rest).",
		},
	}

	for i, rate := range rates {
		res, err := runLoadWindow(h, responses, rate, loadDuration, uint64(100+i))
		if err != nil {
			return err
		}
		report.Results = append(report.Results, res)
		if res.Sustainable && rate > report.MaxSustainableRPS {
			report.MaxSustainableRPS = rate
		}
	}

	totalShed := 0
	for _, r := range report.Results {
		totalShed += r.Shed
	}
	if loadExpectShed && totalShed == 0 {
		return fmt.Errorf("load bench: -load-expect-shed set but no arrival was shed (queue %d, rates %v)", loadQueue, rates)
	}

	fmt.Fprintln(out, "LOAD — open-loop Poisson arrivals vs admission-controlled cluster (batching client, fsync-per-append shard stores)")
	fmt.Fprintf(out, "  context: %d nodes, %d shards, queue %d, inflight %d, one fsync device: %v\n",
		loadNodes, clusterShards, loadQueue, loadInflight, report.Context.SingleFsyncDevice)
	if calibrated > 0 {
		fmt.Fprintf(out, "  calibrated closed-loop capacity %.0f r/s\n", calibrated)
	}
	for _, r := range report.Results {
		fmt.Fprintf(out, "  offered %7.0f r/s   acked %7.0f r/s   shed %5.1f%%   p50 %7.2fms  p99 %8.2fms  p999 %8.2fms   sustainable: %v\n",
			r.OfferedRPS, r.AchievedRPS, r.ShedRate*100,
			r.Latency.P50Millis, r.Latency.P99Millis, r.Latency.P999Millis, r.Sustainable)
	}
	fmt.Fprintf(out, "  max sustainable %.0f r/s\n", report.MaxSustainableRPS)
	fmt.Fprintln(out)

	if loadJSONPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(loadJSONPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("load bench: write report: %w", err)
		}
	}
	return nil
}

// parseLoadRates parses the -load-rates flag.
func parseLoadRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("load bench: bad arrival rate %q", part)
		}
		rates = append(rates, r)
	}
	return rates, nil
}
