package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRunLoadBench smoke-tests the open-loop harness at one modest
// pinned rate and checks the JSON report is well-formed: accounting
// closes, the latency summary covers every ack, and the boundedness
// monitor produced evidence.
func TestRunLoadBench(t *testing.T) {
	silence(t)
	prevJSON, prevRates, prevDur := loadJSONPath, loadRatesFlag, loadDuration
	prevNodes, prevQueue, prevInflight, prevShed := loadNodes, loadQueue, loadInflight, loadExpectShed
	t.Cleanup(func() {
		loadJSONPath, loadRatesFlag, loadDuration = prevJSON, prevRates, prevDur
		loadNodes, loadQueue, loadInflight, loadExpectShed = prevNodes, prevQueue, prevInflight, prevShed
	})
	loadJSONPath = filepath.Join(t.TempDir(), "BENCH_load.json")
	loadRatesFlag = "200"
	loadDuration = 500 * time.Millisecond
	loadNodes = 1
	loadQueue = 64
	loadInflight = 16
	loadExpectShed = false

	if err := runLoadBench(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(loadJSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var report loadReport
	if err := json.Unmarshal(b, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != 1 {
		t.Fatalf("schema = %d, want 1", report.Schema)
	}
	if len(report.Results) != 1 {
		t.Fatalf("%d results, want 1", len(report.Results))
	}
	r := report.Results[0]
	if r.OfferedRPS != 200 || r.Arrivals == 0 {
		t.Fatalf("offered window: %+v", r)
	}
	if r.Acked+r.Shed+r.Failed != r.Arrivals || r.Failed != 0 {
		t.Fatalf("accounting: %+v", r)
	}
	if r.Latency.Samples != r.Acked || (r.Acked > 0 && r.Latency.P99Millis < r.Latency.P50Millis) {
		t.Fatalf("latency summary: %+v", r.Latency)
	}
	if r.MaxGoroutines <= 0 {
		t.Fatalf("no boundedness evidence: %+v", r)
	}
	ctx := report.Context
	if ctx.Nodes != 1 || ctx.SubmitQueue != 64 || ctx.SubmitInflight != 16 ||
		ctx.Clients <= 0 || ctx.Population <= 0 || len(ctx.ShardDevices) == 0 {
		t.Fatalf("context: %+v", ctx)
	}
}
