package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunIngestBench smoke-tests the throughput harness on a tiny
// workload and checks the JSON report is well-formed and complete.
func TestRunIngestBench(t *testing.T) {
	silence(t)
	prevSize, prevPath, prevSeek := ingestBenchSize, ingestJSONPath, ingestSeekRecords
	t.Cleanup(func() { ingestBenchSize, ingestJSONPath, ingestSeekRecords = prevSize, prevPath, prevSeek })
	ingestBenchSize = ingestBenchConfig{Goroutines: 8, Responses: 200, Surveys: 4}
	ingestSeekRecords = 50_000
	ingestJSONPath = filepath.Join(t.TempDir(), "BENCH_ingest.json")

	if err := runIngestBench(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(ingestJSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var report ingestBenchReport
	if err := json.Unmarshal(b, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != 3 {
		t.Fatalf("schema = %d, want 3", report.Schema)
	}
	if len(report.Codecs) != 2 {
		t.Fatalf("%d codec results, want 2", len(report.Codecs))
	}
	for _, c := range report.Codecs {
		if c.BytesPerResponse <= 0 || c.ColdRecoverySecs <= 0 {
			t.Fatalf("codec %s: %+v", c.Codec, c)
		}
	}
	if report.Gates.BinaryBytesRatio <= 0 || report.Gates.BinaryBytesRatio > report.Gates.BinaryBytesRatioMax {
		t.Fatalf("binary bytes ratio gate: %+v", report.Gates)
	}
	if report.Seek.Speedup <= 1 || !indexedSeekWon(report.Seek) {
		t.Fatalf("tail-seek gate: %+v", report.Seek)
	}
	if len(report.Results) != 6 { // mem, file, ingest x {1,2,4,8}
		t.Fatalf("%d results, want 6", len(report.Results))
	}
	for _, r := range report.Results {
		if r.ResponsesPerSec <= 0 {
			t.Fatalf("backend %s (%d shards): nonpositive rate %g", r.Backend, r.Shards, r.ResponsesPerSec)
		}
		if r.Backend == "ingest" && r.GroupCommits <= 0 {
			t.Fatalf("ingest backend with %d shards reports no group commits", r.Shards)
		}
		if r.AppendLatency.Samples != ingestBenchSize.Responses || r.AppendLatency.P99Millis < r.AppendLatency.P50Millis {
			t.Fatalf("backend %s (%d shards): malformed latency summary %+v", r.Backend, r.Shards, r.AppendLatency)
		}
	}
}

// indexedSeekWon is the committed-report gate restated: the indexed
// resume must strictly beat the full replay.
func indexedSeekWon(s ingestSeekResult) bool {
	return s.TailSeekSecs < s.FullReplaySecs
}
