package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunIngestBench smoke-tests the throughput harness on a tiny
// workload and checks the JSON report is well-formed and complete.
func TestRunIngestBench(t *testing.T) {
	silence(t)
	prevSize, prevPath := ingestBenchSize, ingestJSONPath
	t.Cleanup(func() { ingestBenchSize, ingestJSONPath = prevSize, prevPath })
	ingestBenchSize = ingestBenchConfig{Goroutines: 8, Responses: 200, Surveys: 4}
	ingestJSONPath = filepath.Join(t.TempDir(), "BENCH_ingest.json")

	if err := runIngestBench(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(ingestJSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var report ingestBenchReport
	if err := json.Unmarshal(b, &report); err != nil {
		t.Fatal(err)
	}
	if report.Schema != 1 {
		t.Fatalf("schema = %d, want 1", report.Schema)
	}
	if len(report.Results) != 6 { // mem, file, ingest x {1,2,4,8}
		t.Fatalf("%d results, want 6", len(report.Results))
	}
	for _, r := range report.Results {
		if r.ResponsesPerSec <= 0 {
			t.Fatalf("backend %s (%d shards): nonpositive rate %g", r.Backend, r.Shards, r.ResponsesPerSec)
		}
		if r.Backend == "ingest" && r.GroupCommits <= 0 {
			t.Fatalf("ingest backend with %d shards reports no group commits", r.Shards)
		}
	}
}
