// Cluster benchmark ("cluster" experiment id): spin up N in-process
// nodes plus a frontend, push a fixed response load through the
// frontend's public API with concurrent workers, and compare submit
// throughput and merged-read behavior against a single-process
// standalone server over the same durable store class and the same
// data.
//
// The stores are file-backed with fsync-per-append (SyncAlways), so the
// bottleneck under test is the one that matters in production: a
// standalone server funnels every append through one fsync stream,
// while the cluster's per-shard stores fsync in parallel across shards
// and nodes. The shardrpc hop the frontend adds is charged against the
// cluster honestly — the reported scaling is net of transport overhead.
//
// Reads exercise the merge path end to end: the frontend fetches every
// shard's partial accumulator from its owning node and Merges at query
// time. The benchmark asserts the merged estimates match the standalone
// single-accumulator estimates on the same data (exact integer counts,
// float fields to within accumulation-order noise), then reports merged
// read throughput. Results are teed to BENCH_cluster.json.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"loki/internal/core"
	"loki/internal/server"
	"loki/internal/shardrpc"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// Flags (registered in main.go).
var (
	clusterJSONPath  = "BENCH_cluster.json"
	clusterNodesFlag = "1,2,4"
	clusterResponses = 6000
	clusterShards    = 8
	// clusterWorkers is deliberately deep: batching (transport and
	// store level) is the mechanism under test, and it only engages
	// when submits actually queue.
	clusterWorkers = 64
	// clusterCacheTTL is the caching frontend's staleness bound under
	// test (the loki-server default).
	clusterCacheTTL = 250 * time.Millisecond
)

const clusterToken = "bench-cluster-token"

// clusterResult is one configuration's measurement.
type clusterResult struct {
	// Nodes is 0 for the single-process baseline.
	Nodes     int `json:"nodes"`
	Shards    int `json:"shards"`
	Responses int `json:"responses"`
	Workers   int `json:"workers"`
	// SubmitRPS is accepted responses per second through the public
	// submit endpoint (fsync-per-append file stores underneath);
	// SubmitLatency its per-request percentiles over the same window.
	SubmitRPS     float64        `json:"submit_rps"`
	SubmitLatency latencySummary `json:"submit_latency"`
	// SubmitSpeedup is SubmitRPS over the baseline's.
	SubmitSpeedup float64 `json:"submit_speedup,omitempty"`
	// ReadQPS is merged /aggregate queries per second through the
	// UNCACHED frontend (one full snapshot RPC fan-out per read, the
	// PR 4 path); ReadMillis is the mean per-query latency.
	ReadQPS    float64 `json:"read_qps"`
	ReadMillis float64 `json:"read_millis"`
	// CachedReadQPS/CachedReadMillis measure the same reads through a
	// caching frontend over the same nodes (cursor-vector partial
	// cache, conditional delta revalidation); CachedSpeedup is cached
	// over uncached.
	CachedReadQPS    float64 `json:"cached_read_qps,omitempty"`
	CachedReadMillis float64 `json:"cached_read_millis,omitempty"`
	CachedSpeedup    float64 `json:"cached_speedup,omitempty"`
	// Equivalent reports whether the merged estimates — uncached AND
	// cached — matched the baseline's single-accumulator estimates on
	// the same data.
	Equivalent bool `json:"equivalent"`
}

// clusterContext records the environment facts needed to read the
// numbers correctly — above all that every shard store in this
// in-process run fsyncs to the same device, which is why submit
// speedup plateaus (or sags slightly) as nodes grow: parallel fsyncs
// from N "nodes" serialize on one filesystem journal, so shard scaling
// above ~1 node measures transport overhead, not storage parallelism.
// On real deployments with per-node disks the submit trajectory is the
// interesting number; here it is a floor.
type clusterContext struct {
	GOOS   string `json:"goos"`
	NumCPU int    `json:"num_cpu"`
	// StoreRoot is where every configuration's shard stores lived.
	StoreRoot string `json:"store_root"`
	// FsyncDevice is the device id backing StoreRoot; SingleFsyncDevice
	// reports that every shard store shared it (always true for this
	// in-process benchmark).
	FsyncDevice       string `json:"fsync_device"`
	SingleFsyncDevice bool   `json:"single_fsync_device"`
	Note              string `json:"note"`
}

// clusterReport is the BENCH_cluster.json schema.
type clusterReport struct {
	Schema   int            `json:"schema"`
	Context  clusterContext `json:"context"`
	Baseline clusterResult  `json:"baseline"`
	// CacheTTLMillis is the caching frontend's staleness bound.
	CacheTTLMillis float64         `json:"cache_ttl_millis"`
	Results        []clusterResult `json:"results"`
	// Failover is the -kill-node fault-injection timeline (absent when
	// the flag is off).
	Failover *failoverResult `json:"failover,omitempty"`
}

// deviceID returns a printable device id for the filesystem holding
// path (the fsync serialization domain of this run's stores).
func deviceID(path string) string {
	fi, err := os.Stat(path)
	if err != nil {
		return "unknown"
	}
	st, ok := fi.Sys().(*syscall.Stat_t)
	if !ok {
		return "unknown"
	}
	return fmt.Sprintf("dev-%d", st.Dev)
}

// clusterSurvey reuses the readpath survey: every accumulator cell kind
// is exercised, so the equivalence check covers Welford bins, choice
// counts and the quality tally.
func clusterSurvey() *survey.Survey {
	sv := readpathSurvey()
	sv.ID = "bench-cluster"
	return sv
}

// clusterResponse builds the i-th deterministic response. Worker IDs
// drive shard placement, so the same i lands on the same shard in every
// configuration.
func clusterResponse(sv *survey.Survey, i int) *survey.Response {
	levels := []string{"none", "low", "medium", "high"}
	lvl := levels[i%len(levels)]
	rating := float64(1 + i%5)
	q1 := rating
	if i%68 == 0 {
		if rating >= 3 {
			q1 = rating - 2
		} else {
			q1 = rating + 2
		}
	}
	return &survey.Response{
		SurveyID:     sv.ID,
		WorkerID:     fmt.Sprintf("w%07d", i),
		PrivacyLevel: lvl,
		Obfuscated:   lvl != "none",
		Answers: []survey.Answer{
			survey.RatingAnswer("q0", rating),
			survey.RatingAnswer("q1", q1),
			survey.ChoiceAnswer("q2", i%3),
		},
	}
}

// clusterHarness is one running configuration: a handler to drive and
// the teardown stack behind it. Cluster configurations additionally
// carry a caching frontend over the same nodes (cached is nil for the
// standalone baseline).
type clusterHarness struct {
	handler http.Handler
	cached  http.Handler
	closers []func() error
}

func (h *clusterHarness) close() {
	for i := len(h.closers) - 1; i >= 0; i-- {
		_ = h.closers[i]()
	}
}

// newStandaloneHarness builds the single-process baseline: one
// fsync-per-append file store behind the classic server.
func newStandaloneHarness(dir string, sv *survey.Survey) (*clusterHarness, error) {
	st, err := store.OpenFile(filepath.Join(dir, "standalone.jsonl"))
	if err != nil {
		return nil, err
	}
	h := &clusterHarness{closers: []func() error{st.Close}}
	srv, err := server.New(server.Config{Store: st, Schedule: core.DefaultSchedule(), RequesterToken: clusterToken})
	if err != nil {
		h.close()
		return nil, err
	}
	h.closers = append(h.closers, srv.Close)
	if err := st.PutSurvey(sv); err != nil {
		h.close()
		return nil, err
	}
	h.handler = srv
	return h, nil
}

// newClusterHarness builds nodes in-process (real HTTP via httptest for
// the shardrpc hop) and a frontend over them.
func newClusterHarness(dir string, sv *survey.Survey, nodes int) (*clusterHarness, error) {
	h := &clusterHarness{}
	owned := shardrpc.RoundRobinPlacement(clusterShards, nodes)
	clients := make([]*shardrpc.Client, nodes)
	for n := 0; n < nodes; n++ {
		stores := make([]store.Store, len(owned[n]))
		for i, g := range owned[n] {
			st, err := store.OpenFile(filepath.Join(dir, fmt.Sprintf("node%d-gshard%03d.jsonl", n, g)))
			if err != nil {
				h.close()
				return nil, err
			}
			h.closers = append(h.closers, st.Close)
			stores[i] = st
		}
		local, err := shardset.NewLocal(stores, shardset.LocalOptions{GlobalIDs: owned[n], Journal: true})
		if err != nil {
			h.close()
			return nil, err
		}
		srv, err := server.New(server.Config{
			Router: local, Schedule: core.DefaultSchedule(),
			RequesterToken: clusterToken, Role: "node",
		})
		if err != nil {
			h.close()
			return nil, err
		}
		h.closers = append(h.closers, srv.Close)
		node, err := server.NewNode(srv, clusterShards)
		if err != nil {
			h.close()
			return nil, err
		}
		rpc, err := shardrpc.NewHandler(node, clusterToken)
		if err != nil {
			h.close()
			return nil, err
		}
		ts := httptest.NewServer(rpc)
		h.closers = append(h.closers, func() error { ts.Close(); return nil })
		// One transport per node with enough idle conns that the submit
		// workers are not throttled by connection churn.
		hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clusterWorkers * 2}}
		clients[n] = shardrpc.NewClient(ts.URL, clusterToken, hc)
	}
	remote, err := shardrpc.NewRemoteRoundRobin(clients, clusterShards)
	if err != nil {
		h.close()
		return nil, err
	}
	// Two frontends over the same nodes: one with the partial cache
	// disabled (the PR 4 fan-out-per-read path, the honest "uncached"
	// measurement) and one caching with the production-default TTL.
	frontend, err := server.New(server.Config{
		Router: remote, Schedule: core.DefaultSchedule(),
		RequesterToken: clusterToken, Role: "frontend",
		FrontendCacheTTL: -1,
	})
	if err != nil {
		h.close()
		return nil, err
	}
	h.closers = append(h.closers, frontend.Close)
	cached, err := server.New(server.Config{
		Router: remote, Schedule: core.DefaultSchedule(),
		RequesterToken: clusterToken, Role: "frontend",
		FrontendCacheTTL: clusterCacheTTL,
	})
	if err != nil {
		h.close()
		return nil, err
	}
	h.closers = append(h.closers, cached.Close)
	if err := remote.PutSurvey(sv); err != nil {
		h.close()
		return nil, err
	}
	h.handler = frontend
	h.cached = cached
	return h, nil
}

// driveSubmits pushes n deterministic responses (indices base..base+n-1
// — distinct bases keep worker-id spaces disjoint across phases) through
// the handler with the configured worker count and returns accepted
// responses/sec plus per-submit latency percentiles.
func driveSubmits(h http.Handler, sv *survey.Survey, base, n int) (float64, latencySummary, error) {
	var lat latencyRecorder
	var wg sync.WaitGroup
	errCh := make(chan error, clusterWorkers)
	next := make(chan int, clusterWorkers*2)
	// failed gates the feeder: if every worker dies on a systematic
	// error, feeding an unread channel would deadlock the bench instead
	// of reporting the cause.
	failed := make(chan struct{})
	var failOnce sync.Once
	start := time.Now()
	for w := 0; w < clusterWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				body, err := json.Marshal(clusterResponse(sv, i))
				if err != nil {
					errCh <- err
					failOnce.Do(func() { close(failed) })
					return
				}
				req := httptest.NewRequest(http.MethodPost, "/api/v1/surveys/"+sv.ID+"/responses", strings.NewReader(string(body)))
				req.Header.Set("Content-Type", "application/json")
				rec := httptest.NewRecorder()
				reqStart := time.Now()
				h.ServeHTTP(rec, req)
				lat.observe(time.Since(reqStart))
				if rec.Code != http.StatusCreated {
					errCh <- fmt.Errorf("submit %d: HTTP %d: %s", i, rec.Code, rec.Body.String())
					failOnce.Do(func() { close(failed) })
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- base + i:
		case <-failed:
			break feed
		}
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, latencySummary{}, err
	default:
	}
	return float64(n) / elapsed.Seconds(), lat.summarize(), nil
}

// fetchAggregate reads the /aggregate payload once.
func fetchAggregate(h http.Handler, surveyID string) (*server.AggregateResult, error) {
	req := httptest.NewRequest(http.MethodGet, "/api/v1/surveys/"+surveyID+"/aggregate", nil)
	req.Header.Set("Authorization", "Bearer "+clusterToken)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("aggregate HTTP %d: %s", rec.Code, rec.Body.String())
	}
	var out server.AggregateResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// aggregatesEquivalent compares two /aggregate payloads: integer counts
// must match exactly, float fields to within accumulation-order noise
// (merging per-shard Welford partials reorders IEEE-754 operations, so
// bit-identity across fold orders is not a meaningful target; 1e-9
// relative is far below any statistical meaning the estimates carry).
func aggregatesEquivalent(a, b *server.AggregateResult) error {
	feq := func(x, y float64, what string) error {
		tol := 1e-9 * math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		if math.Abs(x-y) > tol {
			return fmt.Errorf("%s: %v vs %v", what, x, y)
		}
		return nil
	}
	if len(a.Questions) != len(b.Questions) || len(a.Choices) != len(b.Choices) {
		return fmt.Errorf("shape mismatch: %d/%d questions, %d/%d choices",
			len(a.Questions), len(b.Questions), len(a.Choices), len(b.Choices))
	}
	for i := range a.Questions {
		qa, qb := &a.Questions[i], &b.Questions[i]
		if qa.QuestionID != qb.QuestionID || qa.OverallN != qb.OverallN {
			return fmt.Errorf("question %s: n %d vs %d", qa.QuestionID, qa.OverallN, qb.OverallN)
		}
		if err := feq(qa.OverallMean, qb.OverallMean, qa.QuestionID+" overall mean"); err != nil {
			return err
		}
		if err := feq(qa.PooledMean, qb.PooledMean, qa.QuestionID+" pooled mean"); err != nil {
			return err
		}
		for l := range qa.Bins {
			ba, bb := &qa.Bins[l], &qb.Bins[l]
			if ba.N != bb.N {
				return fmt.Errorf("question %s bin %d: n %d vs %d", qa.QuestionID, l, ba.N, bb.N)
			}
			if err := feq(ba.Mean, bb.Mean, fmt.Sprintf("%s bin %d mean", qa.QuestionID, l)); err != nil {
				return err
			}
			if err := feq(ba.Variance, bb.Variance, fmt.Sprintf("%s bin %d variance", qa.QuestionID, l)); err != nil {
				return err
			}
		}
	}
	for i := range a.Choices {
		ca, cb := &a.Choices[i], &b.Choices[i]
		if ca.QuestionID != cb.QuestionID || ca.N != cb.N {
			return fmt.Errorf("choice %s: n %d vs %d", ca.QuestionID, ca.N, cb.N)
		}
		for c := range ca.Observed {
			if ca.Observed[c] != cb.Observed[c] {
				return fmt.Errorf("choice %s option %d: observed %d vs %d", ca.QuestionID, c, ca.Observed[c], cb.Observed[c])
			}
			if err := feq(ca.Estimated[c], cb.Estimated[c], fmt.Sprintf("%s option %d estimate", ca.QuestionID, c)); err != nil {
				return err
			}
		}
	}
	return nil
}

// measureReads runs aggregate queries for a short window and returns
// (queries/sec, mean latency).
func measureReads(h http.Handler, surveyID string) (float64, time.Duration, error) {
	qps, err := measure(300*time.Millisecond, 20, func() error {
		_, err := fetchAggregate(h, surveyID)
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	return qps, time.Duration(float64(time.Second) / qps), nil
}

// runClusterBench measures the baseline and every configured node
// count, asserts read equivalence, and writes the report.
func runClusterBench(nodeCounts []int) error {
	sv := clusterSurvey()
	report := clusterReport{Schema: 4, CacheTTLMillis: float64(clusterCacheTTL) / 1e6}

	// Baseline: single process, one fsync stream.
	baseDir, err := os.MkdirTemp("", "loki-bench-cluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(baseDir)
	report.Context = clusterContext{
		GOOS:              runtime.GOOS,
		NumCPU:            runtime.NumCPU(),
		StoreRoot:         filepath.Dir(baseDir),
		FsyncDevice:       deviceID(baseDir),
		SingleFsyncDevice: true,
		Note: "all shard stores fsync to one device in this in-process run; " +
			"submit speedup over the baseline reflects batching and per-shard fsync overlap on a shared filesystem journal, " +
			"so it plateaus (or sags) as in-process nodes grow — that is fsync serialization, not a routing scaling bug. " +
			"Per-node devices move this number; see the README cluster section.",
	}
	base, err := newStandaloneHarness(baseDir, sv)
	if err != nil {
		return err
	}
	baseRPS, baseSubmitLat, err := driveSubmits(base.handler, sv, 0, clusterResponses)
	if err != nil {
		base.close()
		return fmt.Errorf("cluster bench: baseline submits: %w", err)
	}
	baseAgg, err := fetchAggregate(base.handler, sv.ID)
	if err != nil {
		base.close()
		return err
	}
	baseQPS, baseLat, err := measureReads(base.handler, sv.ID)
	if err != nil {
		base.close()
		return err
	}
	base.close()
	report.Baseline = clusterResult{
		Nodes: 0, Shards: 1, Responses: clusterResponses, Workers: clusterWorkers,
		SubmitRPS: baseRPS, SubmitLatency: baseSubmitLat,
		ReadQPS: baseQPS, ReadMillis: float64(baseLat) / 1e6, Equivalent: true,
	}

	for _, nodes := range nodeCounts {
		dir, err := os.MkdirTemp("", "loki-bench-cluster-*")
		if err != nil {
			return err
		}
		h, err := newClusterHarness(dir, sv, nodes)
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		rps, submitLat, err := driveSubmits(h.handler, sv, 0, clusterResponses)
		if err != nil {
			h.close()
			os.RemoveAll(dir)
			return fmt.Errorf("cluster bench: %d-node submits: %w", nodes, err)
		}
		agg, err := fetchAggregate(h.handler, sv.ID)
		if err != nil {
			h.close()
			os.RemoveAll(dir)
			return err
		}
		eqErr := aggregatesEquivalent(agg, baseAgg)
		if eqErr != nil {
			h.close()
			os.RemoveAll(dir)
			return fmt.Errorf("cluster bench: %d-node merged read diverged from the single-accumulator path: %w", nodes, eqErr)
		}
		qps, lat, err := measureReads(h.handler, sv.ID)
		if err != nil {
			h.close()
			os.RemoveAll(dir)
			return err
		}
		// Cached frontend over the same nodes and data: the merged
		// estimate must stay equivalent (cold fill = full fan-out, then
		// cache hits serve the identical finalized merge), and the
		// throughput must never fall below the uncached path — the gate
		// CI enforces.
		cachedAgg, err := fetchAggregate(h.cached, sv.ID)
		if err != nil {
			h.close()
			os.RemoveAll(dir)
			return err
		}
		if eqErr := aggregatesEquivalent(cachedAgg, baseAgg); eqErr != nil {
			h.close()
			os.RemoveAll(dir)
			return fmt.Errorf("cluster bench: %d-node cached read diverged from the single-accumulator path: %w", nodes, eqErr)
		}
		cachedQPS, cachedLat, err := measureReads(h.cached, sv.ID)
		if err != nil {
			h.close()
			os.RemoveAll(dir)
			return err
		}
		h.close()
		os.RemoveAll(dir)
		if cachedQPS < qps {
			return fmt.Errorf("cluster bench: %d-node cached reads (%.0f q/s) fell below the uncached fan-out path (%.0f q/s)",
				nodes, cachedQPS, qps)
		}
		report.Results = append(report.Results, clusterResult{
			Nodes: nodes, Shards: clusterShards, Responses: clusterResponses, Workers: clusterWorkers,
			SubmitRPS: rps, SubmitSpeedup: rps / baseRPS, SubmitLatency: submitLat,
			ReadQPS: qps, ReadMillis: float64(lat) / 1e6,
			CachedReadQPS: cachedQPS, CachedReadMillis: float64(cachedLat) / 1e6,
			CachedSpeedup: cachedQPS / qps,
			Equivalent:    true,
		})
	}

	fmt.Fprintln(out, "CLUSTER — frontend + N nodes vs single process, fsync-per-append stores, merged reads (uncached and cached) verified against the single-accumulator path")
	fmt.Fprintf(out, "  context: %s, %d CPUs, one fsync device (%s) for every shard store\n",
		report.Context.GOOS, report.Context.NumCPU, report.Context.FsyncDevice)
	b := report.Baseline
	fmt.Fprintf(out, "  single    submit %9.0f r/s  p50 %6.2fms p99 %7.2fms            reads %8.0f q/s  (%.3fms)\n",
		b.SubmitRPS, b.SubmitLatency.P50Millis, b.SubmitLatency.P99Millis, b.ReadQPS, b.ReadMillis)
	for _, r := range report.Results {
		fmt.Fprintf(out, "  %d nodes   submit %9.0f r/s  p50 %6.2fms p99 %7.2fms  (%5.2fx)  reads %8.0f q/s  (%.3fms)   cached %8.0f q/s  (%.3fms, %5.1fx)  merged==single: %v\n",
			r.Nodes, r.SubmitRPS, r.SubmitLatency.P50Millis, r.SubmitLatency.P99Millis, r.SubmitSpeedup,
			r.ReadQPS, r.ReadMillis,
			r.CachedReadQPS, r.CachedReadMillis, r.CachedSpeedup, r.Equivalent)
	}
	if clusterKillNode {
		fo, err := runFailoverBench()
		if err != nil {
			return err
		}
		report.Failover = fo
		fmt.Fprintf(out, "  failover  kill-node: detect %.0fms  first read %.1fms  promote %.0fms  submits resume %.0fms\n",
			fo.DetectMillis, fo.FirstReadMillis, fo.PromoteMillis, fo.SubmitRecoveryMillis)
		fmt.Fprintf(out, "            reads through failover %d ok / %d failed (stale-served %d)  submits %d refused (503) then %d accepted  merged==single: %v\n",
			fo.ReadsDuringFailover, fo.ReadFailures, fo.StaleReads, fo.SubmitsRefused, fo.SubmitsRecovered, fo.Equivalent)
	}
	fmt.Fprintln(out)

	if clusterJSONPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(clusterJSONPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("cluster bench: write report: %w", err)
		}
	}
	return nil
}

// parseClusterNodes parses the -cluster-nodes flag.
func parseClusterNodes(s string) ([]int, error) {
	var nodes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("cluster bench: bad node count %q", part)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}
