// Ingest throughput benchmark ("ingest" experiment id): concurrent
// response submission against every store backend, reported as a text
// table and teed to a machine-readable JSON file so later PRs can track
// the performance trajectory.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/blockio"
	"loki/internal/ingest"
	"loki/internal/store"
	"loki/internal/survey"
)

// ingestJSONPath is where the machine-readable report goes; set by the
// -ingest-json flag.
var ingestJSONPath = "BENCH_ingest.json"

// ingestBenchConfig sizes the throughput run. Small enough to finish in
// seconds on a laptop, large enough to amortize setup and trigger group
// commits.
type ingestBenchConfig struct {
	Goroutines int `json:"goroutines"`
	Responses  int `json:"responses_per_backend"`
	Surveys    int `json:"surveys"`
}

// ingestBenchResult is one backend's measurement.
type ingestBenchResult struct {
	Backend         string  `json:"backend"`
	Shards          int     `json:"shards,omitempty"`
	Seconds         float64 `json:"seconds"`
	ResponsesPerSec float64 `json:"responses_per_sec"`
	// AppendLatency holds per-append percentiles across the workers.
	AppendLatency latencySummary `json:"append_latency"`
	// GroupCommits and MeanBatch are ingest-only: fsyncs on the append
	// path and the achieved appends-per-fsync.
	GroupCommits int64   `json:"group_commits,omitempty"`
	MeanBatch    float64 `json:"mean_batch,omitempty"`
}

// ingestCodecResult compares the on-disk codecs on one identical
// single-shard workload: bytes per response on disk and the time a cold
// restart spends replaying the directory back into the index.
type ingestCodecResult struct {
	Codec            string  `json:"codec"`
	BytesOnDisk      int64   `json:"bytes_on_disk"`
	BytesPerResponse float64 `json:"bytes_per_response"`
	ColdRecoverySecs float64 `json:"cold_recovery_seconds"`
}

// ingestSeekResult measures a cursor resume near the tail of one sealed
// binary segment: the block index seeks straight to the last block,
// against a full sequential replay of every block.
type ingestSeekResult struct {
	Records        int     `json:"records"`
	FullReplaySecs float64 `json:"full_replay_seconds"`
	TailSeekSecs   float64 `json:"tail_seek_seconds"`
	Speedup        float64 `json:"speedup"`
	// BlocksRead counts the compressed frames the tail-seek actually
	// decompressed (the full replay reads all of them).
	BlocksRead int `json:"blocks_read"`
}

// ingestGates are the regression gates the committed report asserts:
// the binary codec must store a response in at most BinaryBytesRatioMax
// of the JSON bytes, and the indexed tail-seek must beat a full replay.
type ingestGates struct {
	BinaryBytesRatio    float64 `json:"binary_bytes_ratio"`
	BinaryBytesRatioMax float64 `json:"binary_bytes_ratio_max"`
	TailSeekSpeedup     float64 `json:"tail_seek_speedup"`
	TailSeekSpeedupMin  float64 `json:"tail_seek_speedup_min"`
}

// ingestBenchReport is the BENCH_ingest.json schema.
type ingestBenchReport struct {
	Schema  int                 `json:"schema"`
	Config  ingestBenchConfig   `json:"config"`
	Results []ingestBenchResult `json:"results"`
	Codecs  []ingestCodecResult `json:"codecs"`
	Seek    ingestSeekResult    `json:"seek"`
	Gates   ingestGates         `json:"gates"`
}

// benchIngestSurvey builds one tiny distinct survey per stream so the
// hash partitioner has work to spread.
func benchIngestSurvey(i int) *survey.Survey {
	return &survey.Survey{
		ID:    fmt.Sprintf("bench-ingest-%02d", i),
		Title: fmt.Sprintf("Ingest bench survey %d", i),
		Questions: []survey.Question{
			{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
		},
		RewardCents: 10,
	}
}

// driveStore hammers st with cfg.Responses submissions from
// cfg.Goroutines goroutines and returns the wall time plus per-append
// latency percentiles.
func driveStore(st store.Store, cfg ingestBenchConfig) (time.Duration, latencySummary, error) {
	surveys := make([]*survey.Survey, cfg.Surveys)
	for i := range surveys {
		surveys[i] = benchIngestSurvey(i)
		if err := st.PutSurvey(surveys[i]); err != nil {
			return 0, latencySummary{}, err
		}
	}
	var lat latencyRecorder
	var next atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Responses {
					return
				}
				r := &survey.Response{
					SurveyID:     surveys[i%len(surveys)].ID,
					WorkerID:     fmt.Sprintf("g%02d-%06d", g, i),
					Answers:      []survey.Answer{survey.RatingAnswer("q0", 3)},
					PrivacyLevel: "medium",
					Obfuscated:   true,
				}
				appendStart := time.Now()
				err := st.AppendResponse(r)
				lat.observe(time.Since(appendStart))
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, latencySummary{}, firstErr
	}
	return elapsed, lat.summarize(), nil
}

// ingestBenchSize is the default workload; tests shrink it.
var ingestBenchSize = ingestBenchConfig{Goroutines: 32, Responses: 4000, Surveys: 16}

// ingestSeekRecords sizes the tail-seek measurement; tests shrink it.
var ingestSeekRecords = 1_000_000

// dirSize sums the file sizes under dir.
func dirSize(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			info, err := d.Info()
			if err != nil {
				return err
			}
			total += info.Size()
		}
		return nil
	})
	return total, err
}

// runCodecComparison drives the same single-shard workload through each
// codec and measures bytes-per-response on disk plus the cold-recovery
// replay time of a fresh open.
func runCodecComparison(tmp string, cfg ingestBenchConfig) ([]ingestCodecResult, error) {
	var results []ingestCodecResult
	for _, codec := range []string{blockio.CodecJSON, blockio.CodecBinary} {
		dir := filepath.Join(tmp, "codec-"+codec)
		ing, err := ingest.Open(dir, ingest.Config{Shards: 1, Codec: codec})
		if err != nil {
			return nil, err
		}
		_, _, err = driveStore(ing, cfg)
		if cerr := ing.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("codec bench (%s): %w", codec, err)
		}
		bytes, err := dirSize(dir)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ing, err = ingest.Open(dir, ingest.Config{Shards: 1, Codec: codec})
		if err != nil {
			return nil, fmt.Errorf("codec bench (%s) cold reopen: %w", codec, err)
		}
		recovery := time.Since(start)
		ing.Close()
		results = append(results, ingestCodecResult{
			Codec:            codec,
			BytesOnDisk:      bytes,
			BytesPerResponse: float64(bytes) / float64(cfg.Responses),
			ColdRecoverySecs: recovery.Seconds(),
		})
	}
	return results, nil
}

// runSeekBench writes one sealed binary segment of ingestSeekRecords
// response-shaped records, then times a cursor resume 100 records from
// the end two ways: the block-index seek and a full sequential replay.
func runSeekBench(tmp string) (ingestSeekResult, error) {
	n := ingestSeekRecords
	path := filepath.Join(tmp, "seek.seg")
	f, err := os.Create(path)
	if err != nil {
		return ingestSeekResult{}, err
	}
	w, err := blockio.NewWriter(f, 1)
	if err != nil {
		return ingestSeekResult{}, err
	}
	r := &survey.Response{
		SurveyID:     "bench-seek",
		Answers:      []survey.Answer{survey.RatingAnswer("q0", 3)},
		PrivacyLevel: "medium",
		Obfuscated:   true,
	}
	for i := 0; i < n; i++ {
		r.WorkerID = fmt.Sprintf("worker-%07d", i)
		b, err := json.Marshal(r)
		if err != nil {
			return ingestSeekResult{}, err
		}
		if _, err := w.Append(b); err != nil {
			return ingestSeekResult{}, err
		}
	}
	if err := w.Seal(); err != nil {
		return ingestSeekResult{}, err
	}
	if err := w.Close(); err != nil {
		return ingestSeekResult{}, err
	}

	start := time.Now()
	replayed := 0
	if _, err := blockio.Replay(path, false, func(uint64, []byte) error {
		replayed++
		return nil
	}); err != nil {
		return ingestSeekResult{}, err
	}
	fullReplay := time.Since(start)
	if replayed != n {
		return ingestSeekResult{}, fmt.Errorf("seek bench: replay saw %d of %d records", replayed, n)
	}

	cursor := uint64(n - 100)
	start = time.Now()
	sought := 0
	stats, err := blockio.ScanFrom(path, cursor, func(uint64, []byte) error {
		sought++
		return nil
	})
	if err != nil {
		return ingestSeekResult{}, err
	}
	tailSeek := time.Since(start)
	if !stats.Indexed {
		return ingestSeekResult{}, fmt.Errorf("seek bench: sealed segment scan was not index-driven")
	}
	if sought != 100 {
		return ingestSeekResult{}, fmt.Errorf("seek bench: tail scan saw %d records, want 100", sought)
	}
	return ingestSeekResult{
		Records:        n,
		FullReplaySecs: fullReplay.Seconds(),
		TailSeekSecs:   tailSeek.Seconds(),
		Speedup:        fullReplay.Seconds() / tailSeek.Seconds(),
		BlocksRead:     stats.BlocksRead,
	}, nil
}

// runIngestBench measures every backend and writes the report.
func runIngestBench() error {
	cfg := ingestBenchSize
	tmp, err := os.MkdirTemp("", "loki-ingest-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	report := ingestBenchReport{Schema: 3, Config: cfg}
	record := func(name string, shards int, el time.Duration, lat latencySummary, st *ingest.Stats) {
		res := ingestBenchResult{
			Backend:         name,
			Shards:          shards,
			Seconds:         el.Seconds(),
			ResponsesPerSec: float64(cfg.Responses) / el.Seconds(),
			AppendLatency:   lat,
		}
		if st != nil && st.Commits > 0 {
			res.GroupCommits = st.Commits
			res.MeanBatch = float64(st.Appends) / float64(st.Commits)
		}
		report.Results = append(report.Results, res)
	}

	mem := store.NewMem()
	el, lat, err := driveStore(mem, cfg)
	mem.Close()
	if err != nil {
		return fmt.Errorf("ingest bench (mem): %w", err)
	}
	record("mem", 0, el, lat, nil)

	fileStore, err := store.OpenFile(filepath.Join(tmp, "file.jsonl"))
	if err != nil {
		return err
	}
	el, lat, err = driveStore(fileStore, cfg)
	fileStore.Close()
	if err != nil {
		return fmt.Errorf("ingest bench (file): %w", err)
	}
	record("file-sync-always", 0, el, lat, nil)

	for _, shards := range []int{1, 2, 4, 8} {
		ing, err := ingest.Open(filepath.Join(tmp, fmt.Sprintf("ingest-%d", shards)), ingest.Config{Shards: shards})
		if err != nil {
			return err
		}
		el, lat, err = driveStore(ing, cfg)
		stats := ing.Stats()
		ing.Close()
		if err != nil {
			return fmt.Errorf("ingest bench (%d shards): %w", shards, err)
		}
		record("ingest", shards, el, lat, &stats)
	}

	if report.Codecs, err = runCodecComparison(tmp, cfg); err != nil {
		return err
	}
	if report.Seek, err = runSeekBench(tmp); err != nil {
		return err
	}
	var jsonBytes, binBytes float64
	for _, c := range report.Codecs {
		switch c.Codec {
		case blockio.CodecJSON:
			jsonBytes = float64(c.BytesOnDisk)
		case blockio.CodecBinary:
			binBytes = float64(c.BytesOnDisk)
		}
	}
	report.Gates = ingestGates{
		BinaryBytesRatio:    binBytes / jsonBytes,
		BinaryBytesRatioMax: 0.7,
		TailSeekSpeedup:     report.Seek.Speedup,
		TailSeekSpeedupMin:  1,
	}

	fmt.Fprintln(out, "INGEST THROUGHPUT — concurrent response submission")
	fmt.Fprintf(out, "  %d responses, %d goroutines, %d surveys, durable backends fsync\n",
		cfg.Responses, cfg.Goroutines, cfg.Surveys)
	var fileRate float64
	for _, r := range report.Results {
		if r.Backend == "file-sync-always" {
			fileRate = r.ResponsesPerSec
		}
	}
	for _, r := range report.Results {
		name := r.Backend
		if r.Shards > 0 {
			name = fmt.Sprintf("%s-%d", r.Backend, r.Shards)
		}
		line := fmt.Sprintf("  %-18s %10.0f resp/s  p50 %7.3fms p99 %7.3fms",
			name, r.ResponsesPerSec, r.AppendLatency.P50Millis, r.AppendLatency.P99Millis)
		if r.GroupCommits > 0 {
			line += fmt.Sprintf("  (%5.1f appends/fsync", r.MeanBatch)
			if fileRate > 0 {
				line += fmt.Sprintf(", %.1fx file", r.ResponsesPerSec/fileRate)
			}
			line += ")"
		}
		fmt.Fprintln(out, line)
	}
	fmt.Fprintln(out)

	fmt.Fprintln(out, "ON-DISK CODECS — identical single-shard workload")
	for _, c := range report.Codecs {
		fmt.Fprintf(out, "  %-8s %8.1f bytes/response  cold recovery %8.2f ms\n",
			c.Codec, c.BytesPerResponse, c.ColdRecoverySecs*1e3)
	}
	fmt.Fprintf(out, "  binary/json bytes ratio %.2f (gate: <= %.2f)\n",
		report.Gates.BinaryBytesRatio, report.Gates.BinaryBytesRatioMax)
	fmt.Fprintln(out)

	fmt.Fprintf(out, "CURSOR RESUME — sealed binary segment, %d records, cursor 100 from the end\n", report.Seek.Records)
	fmt.Fprintf(out, "  full replay   %10.2f ms\n", report.Seek.FullReplaySecs*1e3)
	fmt.Fprintf(out, "  indexed seek  %10.2f ms  (%d block(s) read, %.0fx faster; gate: > %.0fx)\n",
		report.Seek.TailSeekSecs*1e3, report.Seek.BlocksRead, report.Seek.Speedup, report.Gates.TailSeekSpeedupMin)
	fmt.Fprintln(out)

	if ingestJSONPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(ingestJSONPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("ingest bench: write report: %w", err)
		}
	}
	if report.Gates.BinaryBytesRatio > report.Gates.BinaryBytesRatioMax {
		return fmt.Errorf("ingest bench gate: binary codec stores %.2fx the JSON bytes (gate %.2f)",
			report.Gates.BinaryBytesRatio, report.Gates.BinaryBytesRatioMax)
	}
	if report.Gates.TailSeekSpeedup <= report.Gates.TailSeekSpeedupMin {
		return fmt.Errorf("ingest bench gate: indexed tail-seek %.2fx vs full replay (gate > %.2f)",
			report.Gates.TailSeekSpeedup, report.Gates.TailSeekSpeedupMin)
	}
	return nil
}
