// Ingest throughput benchmark ("ingest" experiment id): concurrent
// response submission against every store backend, reported as a text
// table and teed to a machine-readable JSON file so later PRs can track
// the performance trajectory.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/ingest"
	"loki/internal/store"
	"loki/internal/survey"
)

// ingestJSONPath is where the machine-readable report goes; set by the
// -ingest-json flag.
var ingestJSONPath = "BENCH_ingest.json"

// ingestBenchConfig sizes the throughput run. Small enough to finish in
// seconds on a laptop, large enough to amortize setup and trigger group
// commits.
type ingestBenchConfig struct {
	Goroutines int `json:"goroutines"`
	Responses  int `json:"responses_per_backend"`
	Surveys    int `json:"surveys"`
}

// ingestBenchResult is one backend's measurement.
type ingestBenchResult struct {
	Backend         string  `json:"backend"`
	Shards          int     `json:"shards,omitempty"`
	Seconds         float64 `json:"seconds"`
	ResponsesPerSec float64 `json:"responses_per_sec"`
	// GroupCommits and MeanBatch are ingest-only: fsyncs on the append
	// path and the achieved appends-per-fsync.
	GroupCommits int64   `json:"group_commits,omitempty"`
	MeanBatch    float64 `json:"mean_batch,omitempty"`
}

// ingestBenchReport is the BENCH_ingest.json schema.
type ingestBenchReport struct {
	Schema  int                 `json:"schema"`
	Config  ingestBenchConfig   `json:"config"`
	Results []ingestBenchResult `json:"results"`
}

// benchIngestSurvey builds one tiny distinct survey per stream so the
// hash partitioner has work to spread.
func benchIngestSurvey(i int) *survey.Survey {
	return &survey.Survey{
		ID:    fmt.Sprintf("bench-ingest-%02d", i),
		Title: fmt.Sprintf("Ingest bench survey %d", i),
		Questions: []survey.Question{
			{ID: "q0", Text: "rate", Kind: survey.Rating, ScaleMin: 1, ScaleMax: 5},
		},
		RewardCents: 10,
	}
}

// driveStore hammers st with cfg.Responses submissions from
// cfg.Goroutines goroutines and returns the wall time.
func driveStore(st store.Store, cfg ingestBenchConfig) (time.Duration, error) {
	surveys := make([]*survey.Survey, cfg.Surveys)
	for i := range surveys {
		surveys[i] = benchIngestSurvey(i)
		if err := st.PutSurvey(surveys[i]); err != nil {
			return 0, err
		}
	}
	var next atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Responses {
					return
				}
				r := &survey.Response{
					SurveyID:     surveys[i%len(surveys)].ID,
					WorkerID:     fmt.Sprintf("g%02d-%06d", g, i),
					Answers:      []survey.Answer{survey.RatingAnswer("q0", 3)},
					PrivacyLevel: "medium",
					Obfuscated:   true,
				}
				if err := st.AppendResponse(r); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, firstErr
	}
	return elapsed, nil
}

// ingestBenchSize is the default workload; tests shrink it.
var ingestBenchSize = ingestBenchConfig{Goroutines: 32, Responses: 4000, Surveys: 16}

// runIngestBench measures every backend and writes the report.
func runIngestBench() error {
	cfg := ingestBenchSize
	tmp, err := os.MkdirTemp("", "loki-ingest-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	report := ingestBenchReport{Schema: 1, Config: cfg}
	record := func(name string, shards int, el time.Duration, st *ingest.Stats) {
		res := ingestBenchResult{
			Backend:         name,
			Shards:          shards,
			Seconds:         el.Seconds(),
			ResponsesPerSec: float64(cfg.Responses) / el.Seconds(),
		}
		if st != nil && st.Commits > 0 {
			res.GroupCommits = st.Commits
			res.MeanBatch = float64(st.Appends) / float64(st.Commits)
		}
		report.Results = append(report.Results, res)
	}

	mem := store.NewMem()
	el, err := driveStore(mem, cfg)
	mem.Close()
	if err != nil {
		return fmt.Errorf("ingest bench (mem): %w", err)
	}
	record("mem", 0, el, nil)

	fileStore, err := store.OpenFile(filepath.Join(tmp, "file.jsonl"))
	if err != nil {
		return err
	}
	el, err = driveStore(fileStore, cfg)
	fileStore.Close()
	if err != nil {
		return fmt.Errorf("ingest bench (file): %w", err)
	}
	record("file-sync-always", 0, el, nil)

	for _, shards := range []int{1, 2, 4, 8} {
		ing, err := ingest.Open(filepath.Join(tmp, fmt.Sprintf("ingest-%d", shards)), ingest.Config{Shards: shards})
		if err != nil {
			return err
		}
		el, err = driveStore(ing, cfg)
		stats := ing.Stats()
		ing.Close()
		if err != nil {
			return fmt.Errorf("ingest bench (%d shards): %w", shards, err)
		}
		record("ingest", shards, el, &stats)
	}

	fmt.Fprintln(out, "INGEST THROUGHPUT — concurrent response submission")
	fmt.Fprintf(out, "  %d responses, %d goroutines, %d surveys, durable backends fsync\n",
		cfg.Responses, cfg.Goroutines, cfg.Surveys)
	var fileRate float64
	for _, r := range report.Results {
		if r.Backend == "file-sync-always" {
			fileRate = r.ResponsesPerSec
		}
	}
	for _, r := range report.Results {
		name := r.Backend
		if r.Shards > 0 {
			name = fmt.Sprintf("%s-%d", r.Backend, r.Shards)
		}
		line := fmt.Sprintf("  %-18s %10.0f resp/s", name, r.ResponsesPerSec)
		if r.GroupCommits > 0 {
			line += fmt.Sprintf("  (%5.1f appends/fsync", r.MeanBatch)
			if fileRate > 0 {
				line += fmt.Sprintf(", %.1fx file", r.ResponsesPerSec/fileRate)
			}
			line += ")"
		}
		fmt.Fprintln(out, line)
	}
	fmt.Fprintln(out)

	if ingestJSONPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(ingestJSONPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("ingest bench: write report: %w", err)
		}
	}
	return nil
}
