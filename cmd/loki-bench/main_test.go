package main

import (
	"io"
	"testing"
)

// silence redirects the report writer for the duration of a test.
func silence(t *testing.T) {
	t.Helper()
	prev := out
	out = io.Discard
	t.Cleanup(func() { out = prev })
}

// TestRunSelected smoke-tests the experiment driver on the fast
// experiments.
func TestRunSelected(t *testing.T) {
	silence(t)
	want := map[string]bool{"e6": true, "a5": true, "a6": true}
	sel := func(ids ...string) bool {
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}
	if err := run(sel, 1); err != nil {
		t.Fatal(err)
	}
}

// TestRunNothing: an unknown id selects no experiment and succeeds.
func TestRunNothing(t *testing.T) {
	silence(t)
	sel := func(...string) bool { return false }
	if err := run(sel, 1); err != nil {
		t.Fatal(err)
	}
}
