// Shared latency accounting for the throughput benchmarks: every
// driven request records its wall time, and the run reports tail
// percentiles alongside the mean throughput — a saturated system can
// hold its responses/sec while its p99 quietly detonates, and the
// committed reports should show that.
package main

import (
	"sort"
	"sync"
	"time"
)

// latencyRecorder collects per-request durations from concurrent
// workers.
type latencyRecorder struct {
	mu      sync.Mutex
	samples []int64 // nanoseconds
}

func (l *latencyRecorder) observe(d time.Duration) {
	l.mu.Lock()
	l.samples = append(l.samples, int64(d))
	l.mu.Unlock()
}

// latencySummary is the wire form embedded in the BENCH_*.json reports.
type latencySummary struct {
	Samples   int     `json:"latency_samples,omitempty"`
	P50Millis float64 `json:"p50_millis,omitempty"`
	P99Millis float64 `json:"p99_millis,omitempty"`
	// P999Millis needs ≥1000 samples to mean anything; smaller runs
	// leave it zero.
	P999Millis float64 `json:"p999_millis,omitempty"`
}

// summarize sorts the collected samples and extracts the percentiles
// (nearest-rank). It may be called once per run; the recorder is not
// reusable afterwards.
func (l *latencyRecorder) summarize() latencySummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.samples)
	if n == 0 {
		return latencySummary{}
	}
	sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
	s := latencySummary{
		Samples:   n,
		P50Millis: l.quantileLocked(0.50),
		P99Millis: l.quantileLocked(0.99),
	}
	if n >= 1000 {
		s.P999Millis = l.quantileLocked(0.999)
	}
	return s
}

func (l *latencyRecorder) quantileLocked(q float64) float64 {
	idx := int(q*float64(len(l.samples)-1) + 0.5)
	return float64(l.samples[idx]) / 1e6
}
