// Command loki-bench regenerates every table and figure of the paper and
// prints the reports experiment by experiment. Use -list to see the
// experiment ids, -run to select a subset (e.g. -run e1,a2), -seed to
// change the base seed, and -out to tee the report to a file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"loki/internal/experiments"
	"loki/internal/population"
)

// out is where experiment reports go; -out tees it to a file.
var out io.Writer = os.Stdout

// populationConfig is the shared region config for standalone analyses.
func populationConfig() population.Config { return population.DefaultConfig() }

// experimentIndex describes every experiment id for -list.
var experimentIndex = []struct{ id, what string }{
	{"e1", "§2 de-anonymization pipeline (400 → 72 → 18)"},
	{"e2", "awareness follow-up survey (73/100 unaware-refuse)"},
	{"e3", "Fig. 2 deviation curves per privacy bin"},
	{"e4", "Fig. 2 per-bin rater histogram"},
	{"e5", "§3.2 trusted-rating anecdote (4.72 vs 4.61)"},
	{"e6", "privacy-level take-up (18/32/51/30)"},
	{"e7", "extension: the §2 attack against Loki uploads"},
	{"a1", "ablation: error vs σ and bin size; clamping bias"},
	{"a2", "ablation: stable worker IDs vs pseudonyms"},
	{"a3", "ablation: redundancy filter on/off"},
	{"a4", "ablation: naive mean vs inverse-variance pooling"},
	{"a5", "ablation: ledger composition rules (basic/advanced/zCDP)"},
	{"a6", "ablation: anonymity collapse survey by survey"},
	{"a7", "ablation: Gaussian vs Laplace noise"},
	{"a8", "ablation: budget balancing across the user base"},
	{"ingest", "ingest throughput: responses/sec per store backend and shard count"},
	{"readpath", "read path: aggregate queries/sec, batch recompute vs live accumulator"},
	{"restart", "restart: first-read latency, whole-backlog rescan vs checkpoint restore"},
	{"cluster", "cluster: N nodes + frontend vs single process; merged-read equivalence"},
	{"budget", "budget: submit throughput with the privacy-budget ledger off vs enforcing"},
	{"load", "load: open-loop Poisson arrivals vs admission control; shed rate and tail latency"},
}

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment ids (e1..e7, a1..a8, ingest, readpath) or 'all'")
	seed := flag.Uint64("seed", 1, "base seed for all experiments")
	list := flag.Bool("list", false, "list experiment ids and exit")
	outPath := flag.String("out", "", "also write the report to this file")
	flag.StringVar(&ingestJSONPath, "ingest-json", ingestJSONPath,
		"where the ingest experiment writes its machine-readable report (empty disables)")
	flag.StringVar(&readpathJSONPath, "readpath-json", readpathJSONPath,
		"where the readpath experiment writes its machine-readable report (empty disables)")
	flag.StringVar(&readpathSizesFlag, "readpath-sizes", readpathSizesFlag,
		"comma-separated stored-response counts the readpath experiment measures")
	flag.StringVar(&restartJSONPath, "restart-json", restartJSONPath,
		"where the restart experiment writes its machine-readable report (empty disables)")
	flag.StringVar(&restartSizesFlag, "restart-sizes", restartSizesFlag,
		"comma-separated stored-response counts the restart experiment measures")
	flag.StringVar(&clusterJSONPath, "cluster-json", clusterJSONPath,
		"where the cluster experiment writes its machine-readable report (empty disables)")
	flag.StringVar(&clusterNodesFlag, "cluster-nodes", clusterNodesFlag,
		"comma-separated node counts the cluster experiment measures")
	flag.IntVar(&clusterResponses, "cluster-responses", clusterResponses,
		"responses the cluster experiment submits per configuration")
	flag.IntVar(&clusterWorkers, "cluster-workers", clusterWorkers,
		"concurrent submit workers in the cluster experiment")
	flag.BoolVar(&clusterKillNode, "kill-node", clusterKillNode,
		"add the failover fault injection to the cluster experiment: kill the primary mid-run and measure read/submit availability through detection, failover and promotion")
	flag.StringVar(&budgetJSONPath, "budget-json", budgetJSONPath,
		"where the budget experiment writes its machine-readable report (empty disables)")
	flag.IntVar(&budgetResponses, "budget-responses", budgetResponses,
		"responses the budget experiment submits per mode")
	flag.StringVar(&loadJSONPath, "load-json", loadJSONPath,
		"where the load experiment writes its machine-readable report (empty disables)")
	flag.StringVar(&loadRatesFlag, "load-rates", loadRatesFlag,
		"comma-separated open-loop arrival rates in responses/sec (empty auto-calibrates 0.5x/1x/1.5x of closed-loop capacity)")
	flag.DurationVar(&loadDuration, "load-duration", loadDuration,
		"open-loop window length per arrival rate")
	flag.IntVar(&loadNodes, "load-nodes", loadNodes,
		"nodes in the load experiment's cluster topology")
	flag.IntVar(&loadQueue, "load-submit-queue", loadQueue,
		"frontend admission queue bound in the load experiment")
	flag.IntVar(&loadInflight, "load-inflight", loadInflight,
		"frontend admission inflight bound in the load experiment")
	flag.BoolVar(&loadExpectShed, "load-expect-shed", loadExpectShed,
		"fail the load experiment unless the shed path activated (CI smoke for the overload contract)")
	flag.Parse()

	if *list {
		for _, e := range experimentIndex {
			fmt.Printf("  %-6s %s\n", e.id, e.what)
		}
		return
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loki-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(strings.ToLower(*runFlag), ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	sel := func(ids ...string) bool {
		if all {
			return true
		}
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}

	if err := run(sel, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "loki-bench:", err)
		os.Exit(1)
	}
}

func run(sel func(...string) bool, seed uint64) error {
	if sel("e1", "e2") {
		cfg := experiments.DefaultDeanonConfig()
		cfg.Seed = seed
		res, err := experiments.RunDeanonymization(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if sel("e3", "e4", "e5", "e6") {
		cfg := experiments.DefaultTrialConfig()
		cfg.Seed = seed + 6
		res, err := experiments.RunLecturerTrial(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())

		tc, err := experiments.RunTrustedComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, tc.Render())

		tk, err := experiments.RunLevelTakeup(seed+7, 200, experiments.PaperTrialStudents)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, tk.Render())
	}
	if sel("a1") {
		cfg := experiments.DefaultSweepConfig()
		cfg.Seed = seed + 10
		res, err := experiments.RunAccuracySweep(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if sel("a2") {
		cfg := experiments.DefaultDeanonConfig()
		cfg.Seed = seed
		stable, pseud, err := experiments.RunIDPolicyAblation(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.RenderIDPolicyAblation(stable, pseud))
	}
	if sel("a3") {
		cfg := experiments.DefaultDeanonConfig()
		cfg.Seed = seed
		filtered, unfiltered, err := experiments.RunFilterAblation(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.RenderFilterAblation(filtered, unfiltered))
	}
	if sel("a4") {
		cfg := experiments.DefaultTrialConfig()
		cfg.Seed = seed + 6
		res, err := experiments.RunEstimatorAblation(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if sel("a5") {
		res, err := experiments.RunLedgerGrowth(experiments.DefaultLedgerGrowthConfig())
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if sel("a6") {
		res, err := experiments.RunLinkageGrowth(seed+20, populationConfig())
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if sel("a7") {
		cfg := experiments.DefaultNoiseComparisonConfig()
		cfg.Seed = seed + 21
		res, err := experiments.RunNoiseComparison(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if sel("a8") {
		cfg := experiments.DefaultBalanceConfig()
		cfg.Seed = seed + 22
		res, err := experiments.RunBalancedCollection(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if sel("e7") {
		cfg := experiments.DefaultDefenseConfig()
		cfg.Deanon.Seed = seed
		res, err := experiments.RunDefense(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if sel("ingest") {
		if err := runIngestBench(); err != nil {
			return err
		}
	}
	if sel("readpath") {
		sizes, err := parseReadpathSizes(readpathSizesFlag)
		if err != nil {
			return err
		}
		if err := runReadpathBench(sizes); err != nil {
			return err
		}
	}
	if sel("restart") {
		sizes, err := parseReadpathSizes(restartSizesFlag)
		if err != nil {
			return err
		}
		if err := runRestartBench(sizes); err != nil {
			return err
		}
	}
	if sel("cluster") {
		nodes, err := parseClusterNodes(clusterNodesFlag)
		if err != nil {
			return err
		}
		if err := runClusterBench(nodes); err != nil {
			return err
		}
	}
	if sel("budget") {
		if err := runBudgetBench(); err != nil {
			return err
		}
	}
	if sel("load") {
		if err := runLoadBench(); err != nil {
			return err
		}
	}
	return nil
}
