// Budget benchmark ("budget" experiment id): measure what enforcing the
// per-worker privacy-budget ledger costs on the submit hot path. Two
// configurations over the same one-node cluster (fsync-per-append file
// stores, real HTTP for the shardrpc hop): budget off — the charger is
// never consulted — and budget enforce, where every submit debits the
// worker's zCDP account on the owning node (durable charge WAL,
// piggybacked on the submit RPC so the hot path stays one round trip)
// before the append. The cap is set
// far above the workload so every charge is admitted: the number under
// test is accounting overhead, not rejection throughput. Results are
// teed to BENCH_budget.json; the run fails if enforcement costs more
// than budgetMaxOverhead of the off-path throughput.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"

	"loki/internal/budget"
	"loki/internal/core"
	"loki/internal/server"
	"loki/internal/shardrpc"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// Flags (registered in main.go).
var (
	budgetJSONPath  = "BENCH_budget.json"
	budgetResponses = 4000
	// budgetRounds: each mode is measured this many times and the best
	// round is kept, damping fsync-jitter on shared CI filesystems.
	budgetRounds = 3
)

// budgetMaxOverhead is the acceptance ceiling: enforce-on submit
// throughput must stay within this fraction of enforce-off.
const budgetMaxOverhead = 0.25

// budgetBenchCap admits every charge in the workload: each worker
// submits one response, and no single response costs this much epsilon.
const budgetBenchCap = 1e6

// budgetResult is one mode's measurement.
type budgetResult struct {
	Mode      string  `json:"mode"`
	Responses int     `json:"responses"`
	Workers   int     `json:"workers"`
	SubmitRPS float64 `json:"submit_rps"`
	// SubmitLatency holds the best round's per-submit percentiles.
	SubmitLatency latencySummary `json:"submit_latency"`
	// Charges is the ledger-side debit count after the run (zero with
	// the charger off); every submit must have been accounted.
	Charges uint64 `json:"charges,omitempty"`
}

// budgetReport is the BENCH_budget.json schema.
type budgetReport struct {
	Schema  int          `json:"schema"`
	GOOS    string       `json:"goos"`
	NumCPU  int          `json:"num_cpu"`
	Shards  int          `json:"shards"`
	Off     budgetResult `json:"off"`
	Enforce budgetResult `json:"enforce"`
	// OverheadFrac is 1 - enforce_rps/off_rps; MaxOverheadFrac the
	// ceiling the run is gated on.
	OverheadFrac    float64 `json:"overhead_frac"`
	MaxOverheadFrac float64 `json:"max_overhead_frac"`
}

// budgetHarness is one running one-node cluster; set is nil with the
// budget off.
type budgetHarness struct {
	handler http.Handler
	set     *budget.Set
	closers []func() error
}

func (h *budgetHarness) close() {
	for i := len(h.closers) - 1; i >= 0; i-- {
		_ = h.closers[i]()
	}
}

// newBudgetHarness builds one node (file stores, budget WAL under dir
// when enforcing) and a frontend over it.
func newBudgetHarness(dir string, sv *survey.Survey, enforce bool) (*budgetHarness, error) {
	h := &budgetHarness{}
	owned := shardrpc.RoundRobinPlacement(clusterShards, 1)[0]
	stores := make([]store.Store, len(owned))
	for i, g := range owned {
		st, err := store.OpenFile(filepath.Join(dir, fmt.Sprintf("gshard%03d.jsonl", g)))
		if err != nil {
			h.close()
			return nil, err
		}
		h.closers = append(h.closers, st.Close)
		stores[i] = st
	}
	local, err := shardset.NewLocal(stores, shardset.LocalOptions{GlobalIDs: owned, Journal: true})
	if err != nil {
		h.close()
		return nil, err
	}
	srv, err := server.New(server.Config{
		Router: local, Schedule: core.DefaultSchedule(),
		RequesterToken: clusterToken, Role: "node",
	})
	if err != nil {
		h.close()
		return nil, err
	}
	h.closers = append(h.closers, srv.Close)
	node, err := server.NewNode(srv, clusterShards)
	if err != nil {
		h.close()
		return nil, err
	}
	bcfg := budget.Config{CapEpsilon: budgetBenchCap, Delta: 1e-6}
	if enforce {
		set, err := budget.NewSet(budget.SetOptions{
			Shards: clusterShards, GlobalIDs: owned,
			Dir: filepath.Join(dir, "budget"), Config: bcfg,
		})
		if err != nil {
			h.close()
			return nil, err
		}
		h.closers = append(h.closers, set.Close)
		h.set = set
		node.HostBudget(set)
	}
	rpc, err := shardrpc.NewHandler(node, clusterToken)
	if err != nil {
		h.close()
		return nil, err
	}
	ts := httptest.NewServer(rpc)
	h.closers = append(h.closers, func() error { ts.Close(); return nil })
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clusterWorkers * 2}}
	client := shardrpc.NewClient(ts.URL, clusterToken, hc)
	remote, err := shardrpc.NewRemoteRoundRobin([]*shardrpc.Client{client}, clusterShards)
	if err != nil {
		h.close()
		return nil, err
	}
	fcfg := server.Config{
		Router: remote, Schedule: core.DefaultSchedule(),
		RequesterToken: clusterToken, Role: "frontend",
		FrontendCacheTTL: -1,
	}
	if enforce {
		charger, err := shardrpc.NewRemoteCharger([]*shardrpc.Client{client}, clusterShards, bcfg)
		if err != nil {
			h.close()
			return nil, err
		}
		if err := remote.EnablePiggybackCharges(clusterShards); err != nil {
			h.close()
			return nil, err
		}
		fcfg.Budget = charger
		fcfg.BudgetEnforce = "enforce"
	}
	frontend, err := server.New(fcfg)
	if err != nil {
		h.close()
		return nil, err
	}
	h.closers = append(h.closers, frontend.Close)
	if err := remote.PutSurvey(sv); err != nil {
		h.close()
		return nil, err
	}
	h.handler = frontend
	return h, nil
}

// measureBudgetMode runs budgetRounds fresh harnesses in the given mode
// and keeps the best throughput, returning it with the final round's
// ledger charge count.
func measureBudgetMode(sv *survey.Survey, enforce bool) (float64, latencySummary, uint64, error) {
	var best float64
	var bestLat latencySummary
	var charges uint64
	for round := 0; round < budgetRounds; round++ {
		dir, err := os.MkdirTemp("", "loki-bench-budget-*")
		if err != nil {
			return 0, latencySummary{}, 0, err
		}
		h, err := newBudgetHarness(dir, sv, enforce)
		if err != nil {
			os.RemoveAll(dir)
			return 0, latencySummary{}, 0, err
		}
		rps, lat, err := driveSubmits(h.handler, sv, 0, budgetResponses)
		if err != nil {
			h.close()
			os.RemoveAll(dir)
			return 0, latencySummary{}, 0, fmt.Errorf("budget bench (enforce=%v): %w", enforce, err)
		}
		charges = 0
		if h.set != nil {
			stats, err := h.set.Stats()
			if err != nil {
				h.close()
				os.RemoveAll(dir)
				return 0, latencySummary{}, 0, err
			}
			for _, s := range stats {
				charges += s.Charges
			}
			if charges != uint64(budgetResponses) {
				h.close()
				os.RemoveAll(dir)
				return 0, latencySummary{}, 0, fmt.Errorf("budget bench: ledger holds %d charges for %d submits", charges, budgetResponses)
			}
		}
		h.close()
		os.RemoveAll(dir)
		if rps > best {
			best = rps
			bestLat = lat
		}
	}
	return best, bestLat, charges, nil
}

// runBudgetBench measures submit throughput with the budget off and
// enforcing, gates on the overhead ceiling, and writes the report.
func runBudgetBench() error {
	sv := clusterSurvey()
	offRPS, offLat, _, err := measureBudgetMode(sv, false)
	if err != nil {
		return err
	}
	onRPS, onLat, charges, err := measureBudgetMode(sv, true)
	if err != nil {
		return err
	}
	report := budgetReport{
		Schema: 2, GOOS: runtime.GOOS, NumCPU: runtime.NumCPU(), Shards: clusterShards,
		Off: budgetResult{
			Mode: "off", Responses: budgetResponses, Workers: clusterWorkers,
			SubmitRPS: offRPS, SubmitLatency: offLat,
		},
		Enforce: budgetResult{
			Mode: "enforce", Responses: budgetResponses, Workers: clusterWorkers,
			SubmitRPS: onRPS, SubmitLatency: onLat, Charges: charges,
		},
		OverheadFrac:    1 - onRPS/offRPS,
		MaxOverheadFrac: budgetMaxOverhead,
	}

	fmt.Fprintln(out, "BUDGET — submit throughput with the privacy-budget ledger off vs enforcing (one node, fsync-per-append stores, durable charge WAL)")
	fmt.Fprintf(out, "  off      submit %9.0f r/s  p50 %6.2fms p99 %7.2fms\n", offRPS, offLat.P50Millis, offLat.P99Millis)
	fmt.Fprintf(out, "  enforce  submit %9.0f r/s  p50 %6.2fms p99 %7.2fms  (%d charges accounted, %.1f%% overhead, ceiling %.0f%%)\n",
		onRPS, onLat.P50Millis, onLat.P99Millis, charges, report.OverheadFrac*100, budgetMaxOverhead*100)
	fmt.Fprintln(out)

	if budgetJSONPath != "" {
		b, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(budgetJSONPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("budget bench: write report: %w", err)
		}
	}
	if report.OverheadFrac > budgetMaxOverhead {
		return fmt.Errorf("budget bench: enforcement costs %.1f%% of submit throughput (ceiling %.0f%%): %0.f r/s off vs %0.f r/s enforcing",
			report.OverheadFrac*100, budgetMaxOverhead*100, offRPS, onRPS)
	}
	return nil
}
