package main

import (
	"io"
	"log"
	"path/filepath"
	"testing"

	"loki/internal/blockio"
	"loki/internal/ingest"
	"loki/internal/store"
)

// TestOpenStore resolves each -store syntax to the right backend.
func TestOpenStore(t *testing.T) {
	icfg := ingest.Config{Shards: 2}

	st, err := openStore("mem", icfg, blockio.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*store.Mem); !ok {
		t.Fatalf("mem resolved to %T", st)
	}
	st.Close()

	dir := t.TempDir()
	st, err = openStore("ingest:"+dir, icfg, blockio.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	ing, ok := st.(*ingest.Sharded)
	if !ok {
		t.Fatalf("ingest: resolved to %T", st)
	}
	if err := seedStore(ing, log.New(io.Discard, "", 0)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st, err = openStore(filepath.Join(t.TempDir(), "loki.jsonl"), icfg, blockio.CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*store.File); !ok {
		t.Fatalf("file path resolved to %T", st)
	}
	st.Close()
}

func TestSeedStore(t *testing.T) {
	st := store.NewMem()
	defer st.Close()
	logger := log.New(io.Discard, "", 0)
	if err := seedStore(st, logger); err != nil {
		t.Fatal(err)
	}
	surveys, err := st.Surveys()
	if err != nil {
		t.Fatal(err)
	}
	if len(surveys) != 6 {
		t.Fatalf("catalog = %d surveys, want 6", len(surveys))
	}
	// Re-seeding a store that already has the catalog is a no-op, not an
	// error — the durable-store replay path.
	if err := seedStore(st, logger); err != nil {
		t.Fatalf("re-seed failed: %v", err)
	}
	surveys, _ = st.Surveys()
	if len(surveys) != 6 {
		t.Fatalf("re-seed duplicated surveys: %d", len(surveys))
	}
}
