package main

import (
	"io"
	"log"
	"testing"

	"loki/internal/store"
)

func TestSeedStore(t *testing.T) {
	st := store.NewMem()
	defer st.Close()
	logger := log.New(io.Discard, "", 0)
	if err := seedStore(st, logger); err != nil {
		t.Fatal(err)
	}
	surveys, err := st.Surveys()
	if err != nil {
		t.Fatal(err)
	}
	if len(surveys) != 6 {
		t.Fatalf("catalog = %d surveys, want 6", len(surveys))
	}
	// Re-seeding a store that already has the catalog is a no-op, not an
	// error — the durable-store replay path.
	if err := seedStore(st, logger); err != nil {
		t.Fatalf("re-seed failed: %v", err)
	}
	surveys, _ = st.Surveys()
	if len(surveys) != 6 {
		t.Fatalf("re-seed duplicated surveys: %d", len(surveys))
	}
}
