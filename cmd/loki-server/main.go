// Command loki-server runs the Loki backend: the HTTP/JSON API that
// serves surveys, accepts at-source-obfuscated responses, and exposes
// noise-aware aggregates to requesters.
//
// Usage:
//
//	loki-server -addr :8080 -token secret -store loki.jsonl -seed-catalog
//	loki-server -store ingest:/var/lib/loki -shards 8 -commit-interval 1ms
//
// Cluster roles (-role):
//
//	standalone  (default) one process owns everything — the classic
//	            deployment; responses live on one logical shard.
//	node        owns a subset of the cluster's shard space and serves
//	            the internal shardrpc transport (submit-batch, cursor
//	            scans, partial-aggregate snapshots, WAL-tail shipping)
//	            alongside the public API. Configure with -cluster-shards
//	            (global shard count), -cluster-nodes (cluster size) and
//	            -node-index (this node's slot); the node owns every
//	            shard s with s % cluster-nodes == node-index. Each owned
//	            shard gets its own store (subdirectory for durable
//	            backends).
//	frontend    owns no storage: routes submissions to the nodes in
//	            -peers by the cluster-wide placement hash and answers
//	            reads from a per-survey partial cache (keyed by the
//	            per-shard cursor vector, revalidated with conditional
//	            delta RPCs within -frontend-cache-ttl, invalidated for
//	            read-your-writes by submits through this frontend;
//	            -frontend-refresh keeps hot surveys warm in the
//	            background). With caching disabled every read fetches
//	            every shard's partial accumulator and Merges at query
//	            time.
//	replica     tails the node at -follow via WAL shipping and serves
//	            the read-only half of the public API with a staleness
//	            cursor on the admin surface. Submits/publishes get 403.
//	            Also serves shardrpc, so frontends can fail reads over
//	            to it, and can be promoted to a shard's writable
//	            primary (POST /api/v1/admin/promote/{shard}, or
//	            automatically after -promote-after of the primary being
//	            unreachable).
//
// High availability (-manifest): cluster roles can share a versioned
// placement manifest (JSON: shard -> primary + replicas, each shard
// with a fencing epoch) instead of positional -peers. Every role
// watches the file (-manifest-poll): frontends route by it, probe node
// health (-probe-interval) and fail reads over to replicas when a
// primary dies (writes to the failed shard answer 503 + Retry-After
// until promotion); a promotion bumps the shard's epoch in the
// manifest, which re-routes every frontend and fences the old
// primary's writes with 412 when it returns. -advertise tells a node
// or replica which manifest entry is itself.
//
// With -store mem the server keeps everything in memory; with -store
// ingest:DIR it opens the sharded segmented-WAL ingest store rooted at
// DIR (tuned by -shards, -commit-interval and -segment-bytes); otherwise
// the given JSON-lines file is opened (and replayed) as the durable
// store. -seed-catalog publishes the paper's survey catalog on startup
// so a fresh server has something to serve.
//
// -checkpoint-dir DIR enables durable live-aggregate checkpoints (one
// file per survey, one record per shard): the server periodically
// (-checkpoint-interval) persists each shard partial's state plus
// cursor, so after a restart the first read scans only each shard's
// tail beyond its own checkpoint.
//
// Privacy budget (-budget-enforce=off|log|enforce): every submit debits
// the worker's zCDP account against a (-budget-cap-epsilon,
// -budget-delta) ceiling before it is appended. Standalone servers keep
// the ledger in process; cluster nodes host the budget shards their
// slot owns (durable under -budget-dir) and frontends charge through
// them over shardrpc, so one worker's spend is enforced across every
// frontend. Set the budget flags identically on node and frontend
// roles — the shard count and placement must agree.
//
// Overload protection (default off): -submit-inflight and -submit-queue
// bound concurrent and queued submits, shedding the excess with 429 +
// Retry-After instead of letting latency and goroutines grow without
// bound; -rate-limit-rps adds a per-requester token-bucket ceiling.
// The admin store endpoint reports queue depth, shed and throttle
// counters when either is on.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"loki/internal/blockio"
	"loki/internal/budget"
	"loki/internal/checkpoint"
	"loki/internal/core"
	"loki/internal/ingest"
	"loki/internal/placement"
	"loki/internal/server"
	"loki/internal/shardrpc"
	"loki/internal/shardset"
	"loki/internal/store"
	"loki/internal/survey"
)

// clusterFlags carries the -role wiring.
type clusterFlags struct {
	role           string
	peers          string // frontend: comma-separated node base URLs
	follow         string // replica: node base URL
	clusterShards  int    // node/frontend: global shard count
	clusterNodes   int    // node: cluster size (for ownership)
	nodeIndex      int    // node: this node's slot
	clusterToken   string // shardrpc bearer token (defaults to -token)
	pollInterval   time.Duration
	cacheTTL       time.Duration // frontend: partial cache staleness bound
	cacheRefresh   time.Duration // frontend: background refresher interval
	journalRetain  int           // node: journal retained-entry bound
	followerID     string        // replica: stable follower id for truncation acks
	followerAckTTL time.Duration // node: expire silent follower acks after this long

	manifest      string        // all cluster roles: shared placement manifest path
	manifestPoll  time.Duration // manifest watch interval
	advertise     string        // node/replica: this process's base URL in the manifest
	probeInterval time.Duration // frontend: health-probe interval of the failure detector
	promoteAfter  time.Duration // replica: auto-promote after the tail has failed this long (0 = operator only)

	budgetDir     string  // node/standalone: budget WAL directory (empty = in-memory)
	budgetCap     float64 // epsilon ceiling per worker
	budgetDelta   float64 // delta the epsilon conversion is quoted at
	budgetEnforce string  // off, log or enforce

	submitInflight int     // admission: concurrent submits past which arrivals queue (0 = off)
	submitQueue    int     // admission: queued submits past which arrivals shed with 429
	rateLimitRPS   float64 // per-requester submit rate ceiling (0 = off)
	rateLimitBurst int     // per-requester burst above the sustained rate
}

// admission threads the overload knobs into a server config; zero
// values leave the config untouched (default-off paths stay identical).
func (cf *clusterFlags) admission(scfg *server.Config) {
	scfg.SubmitInflight = cf.submitInflight
	scfg.SubmitQueue = cf.submitQueue
	scfg.RateLimitRPS = cf.rateLimitRPS
	scfg.RateLimitBurst = cf.rateLimitBurst
}

// budgetEnabled reports whether any budget accounting is configured:
// an enforcement mode past off, or a durable ledger directory (which
// hosts accounts even when this process does not enforce, so that
// frontends that do can charge through it).
func (cf *clusterFlags) budgetEnabled() bool {
	return cf.budgetEnforce != "off" || cf.budgetDir != ""
}

func (cf *clusterFlags) budgetConfig() budget.Config {
	return budget.Config{CapEpsilon: cf.budgetCap, Delta: cf.budgetDelta}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "mem", `persistence: "mem", "ingest:DIR" or a JSON-lines file path`)
	token := flag.String("token", "requester-secret", "requester bearer token")
	seedCatalog := flag.Bool("seed-catalog", false, "publish the paper's survey catalog on startup")
	shards := flag.Int("shards", 8, "ingest store: number of hash-partitioned WAL shards")
	commitEvery := flag.Duration("commit-interval", 0, "ingest store: group-commit window (0 = commit as soon as the committer is free)")
	segmentBytes := flag.Int64("segment-bytes", 16<<20, "ingest store: WAL segment rotation threshold")
	idleCompact := flag.Duration("idle-compact", time.Minute, "ingest store: compact a shard's WAL tail after this long without commits (negative disables)")
	storeCodec := flag.String("store-codec", blockio.CodecBinary,
		`on-disk record codec for new files: "binary" (compressed block format) or "json" (plain JSON lines); existing files keep the format they were written in`)
	checkpointDir := flag.String("checkpoint-dir", "", "directory for durable live-aggregate checkpoints (empty disables; restart catch-up then rescans whole backlogs)")
	checkpointEvery := flag.Duration("checkpoint-interval", 15*time.Second, "background checkpointer flush period")
	var cf clusterFlags
	flag.StringVar(&cf.role, "role", "standalone", "deployment role: standalone, node, frontend or replica")
	flag.StringVar(&cf.peers, "peers", "", "frontend: comma-separated node base URLs (http://host:port), in node-index order")
	flag.StringVar(&cf.follow, "follow", "", "replica: base URL of the node to tail")
	flag.IntVar(&cf.clusterShards, "cluster-shards", 8, "node/frontend: global shard count (fixed for the cluster's lifetime)")
	flag.IntVar(&cf.clusterNodes, "cluster-nodes", 1, "node: number of nodes in the cluster")
	flag.IntVar(&cf.nodeIndex, "node-index", 0, "node: this node's slot in [0, cluster-nodes)")
	flag.StringVar(&cf.clusterToken, "cluster-token", "", "bearer token for the internal shardrpc transport (defaults to -token)")
	flag.DurationVar(&cf.pollInterval, "replica-poll", 500*time.Millisecond, "replica: journal tail poll interval")
	flag.DurationVar(&cf.cacheTTL, "frontend-cache-ttl", 250*time.Millisecond,
		"frontend: partial cache staleness bound — reads within it are served from cache with no node RPCs (negative disables caching)")
	flag.DurationVar(&cf.cacheRefresh, "frontend-refresh", 0,
		"frontend: background cache refresher interval for recently read surveys (0 disables; reads then revalidate inline on expiry)")
	flag.IntVar(&cf.journalRetain, "journal-retain", 65536,
		"node: per-shard append-journal retained-entry bound; lagging replicas past it rebuild from store scans (0 retains until every registered follower acks)")
	flag.StringVar(&cf.followerID, "follower-id", "",
		"replica: stable follower id for journal-truncation acks (defaults to a process-scoped id)")
	flag.DurationVar(&cf.followerAckTTL, "follower-ack-ttl", 10*time.Minute,
		"node: drop a replica's journal-truncation ack after this long without a tail from it, so dead replicas stop pinning retention (0 keeps acks forever)")
	flag.StringVar(&cf.manifest, "manifest", "",
		"path of the shared placement manifest (versioned JSON mapping shard -> primary + replicas with per-shard epochs); watched by every cluster role, so promotions re-route frontends and fence demoted nodes without restarts")
	flag.DurationVar(&cf.manifestPoll, "manifest-poll", time.Second, "placement manifest watch interval")
	flag.StringVar(&cf.advertise, "advertise", "",
		"node/replica: this process's base URL exactly as the manifest names it (required with -manifest on those roles)")
	flag.DurationVar(&cf.probeInterval, "probe-interval", 500*time.Millisecond,
		"frontend: health-probe interval of the per-node failure detector (with -manifest)")
	flag.DurationVar(&cf.promoteAfter, "promote-after", 0,
		"replica: promote a followed shard automatically after its tail has been failing this long (0 promotes only on the operator signal)")
	flag.StringVar(&cf.budgetDir, "budget-dir", "",
		"directory for the durable per-worker privacy-budget ledgers (empty keeps them in memory)")
	flag.Float64Var(&cf.budgetCap, "budget-cap-epsilon", 10,
		"per-worker privacy-budget ceiling, quoted as epsilon at -budget-delta")
	flag.Float64Var(&cf.budgetDelta, "budget-delta", 1e-6,
		"delta the budget epsilon conversion is quoted at")
	flag.StringVar(&cf.budgetEnforce, "budget-enforce", "off",
		"privacy-budget mode: off (no accounting), log (account and log over-cap workers) or enforce (reject over-cap submits with 429)")
	flag.IntVar(&cf.submitInflight, "submit-inflight", 0,
		"admission control: submits served concurrently before arrivals queue (0 disables admission control)")
	flag.IntVar(&cf.submitQueue, "submit-queue", 0,
		"admission control: submits queued behind -submit-inflight before arrivals shed with 429 + Retry-After (setting it without -submit-inflight defaults inflight to 4x GOMAXPROCS)")
	flag.Float64Var(&cf.rateLimitRPS, "rate-limit-rps", 0,
		"per-requester submit rate ceiling in responses/sec; over-rate submits get 429 + Retry-After (0 disables)")
	flag.IntVar(&cf.rateLimitBurst, "rate-limit-burst", 0,
		"per-requester burst allowance above -rate-limit-rps (0 defaults to the rate, minimum 1)")
	flag.Parse()

	if cf.clusterToken == "" {
		cf.clusterToken = *token
	}
	icfg := ingest.Config{Shards: *shards, CommitInterval: *commitEvery, SegmentBytes: *segmentBytes, IdleCompact: *idleCompact, Codec: *storeCodec}
	logger := log.New(os.Stderr, "loki-server ", log.LstdFlags)
	if !blockio.ValidCodec(*storeCodec) {
		logger.Fatalf("unknown -store-codec %q (binary, json)", *storeCodec)
	}
	if err := run(*addr, *storePath, *token, *seedCatalog, icfg, *storeCodec, *checkpointDir, *checkpointEvery, cf, logger); err != nil {
		logger.Fatal(err)
	}
}

// openStore resolves the -store flag: "mem", "ingest:DIR", or a
// single-log file path. codec picks the on-disk record format for new
// files (existing files keep whatever format they sniff as).
func openStore(storePath string, icfg ingest.Config, codec string) (store.Store, error) {
	switch {
	case storePath == "mem":
		return store.NewMem(), nil
	case strings.HasPrefix(storePath, "ingest:"):
		return ingest.Open(strings.TrimPrefix(storePath, "ingest:"), icfg)
	default:
		return store.OpenFileWith(storePath, store.FileOptions{Codec: codec})
	}
}

// openShardStore resolves the -store flag for one owned global shard of
// a node: durable backends get a per-shard location derived from the
// configured one.
func openShardStore(storePath string, icfg ingest.Config, codec string, globalShard int) (store.Store, error) {
	switch {
	case storePath == "mem":
		return store.NewMem(), nil
	case strings.HasPrefix(storePath, "ingest:"):
		dir := strings.TrimPrefix(storePath, "ingest:")
		return ingest.Open(fmt.Sprintf("%s/gshard-%03d", dir, globalShard), icfg)
	default:
		return store.OpenFileWith(fmt.Sprintf("%s.gshard-%03d", storePath, globalShard), store.FileOptions{Codec: codec})
	}
}

// ownedShards returns the global shards a node slot owns. The
// placement itself lives in shardrpc.RoundRobinPlacement — the same
// function the frontend routes by — so node ownership and frontend
// routing cannot drift apart.
func ownedShards(clusterShards, clusterNodes, nodeIndex int) ([]int, error) {
	if clusterShards < 1 {
		return nil, fmt.Errorf("cluster-shards %d < 1", clusterShards)
	}
	if clusterNodes < 1 || nodeIndex < 0 || nodeIndex >= clusterNodes {
		return nil, fmt.Errorf("node-index %d outside [0, %d)", nodeIndex, clusterNodes)
	}
	owned := shardrpc.RoundRobinPlacement(clusterShards, clusterNodes)[nodeIndex]
	if len(owned) == 0 {
		return nil, fmt.Errorf("node %d of %d owns no shards of %d", nodeIndex, clusterNodes, clusterShards)
	}
	return owned, nil
}

// openCheckpoints opens the checkpoint log when enabled, logging its
// replayed state.
func openCheckpoints(dir, codec string, every time.Duration, logger *log.Logger) (*checkpoint.Log, error) {
	if dir == "" {
		return nil, nil
	}
	ckpt, err := checkpoint.OpenWith(dir, checkpoint.Options{Codec: codec})
	if err != nil {
		return nil, err
	}
	logger.Printf("checkpointing live aggregates to %s every %v (%d surveys on record)", dir, every, ckpt.Len())
	if n := ckpt.CorruptRecords(); n > 0 {
		logger.Printf("checkpoint log had %d unreadable records (skipped); affected shards rebuild from the store", n)
	}
	return ckpt, nil
}

// publisher is the seeding surface both a bare store and a shard router
// provide.
type publisher interface {
	PutSurvey(*survey.Survey) error
}

// budgetWhere names the ledger's home for startup logs.
func budgetWhere(dir string) string {
	if dir == "" {
		return "in memory"
	}
	return dir
}

func run(addr, storePath, token string, seedCatalog bool, icfg ingest.Config, storeCodec, checkpointDir string, checkpointEvery time.Duration, cf clusterFlags, logger *log.Logger) error {
	var handler http.Handler
	var closers []func() error
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			if err := closers[i](); err != nil {
				logger.Printf("shutdown: %v", err)
			}
		}
	}()

	switch cf.role {
	case "standalone":
		st, err := openStore(storePath, icfg, storeCodec)
		if err != nil {
			return err
		}
		closers = append(closers, st.Close)
		if seedCatalog {
			if err := seedStore(st, logger); err != nil {
				return err
			}
		}
		ckpt, err := openCheckpoints(checkpointDir, storeCodec, checkpointEvery, logger)
		if err != nil {
			return err
		}
		if ckpt != nil {
			closers = append(closers, ckpt.Close)
		}
		scfg := server.Config{
			Store:              st,
			Schedule:           core.DefaultSchedule(),
			RequesterToken:     token,
			Logger:             logger,
			Checkpoints:        ckpt,
			CheckpointInterval: checkpointEvery,
		}
		cf.admission(&scfg)
		if cf.budgetEnabled() {
			set, err := budget.NewSet(budget.SetOptions{
				Shards: 1, Dir: cf.budgetDir, Config: cf.budgetConfig(),
			})
			if err != nil {
				return err
			}
			closers = append(closers, set.Close)
			scfg.Budget = set
			scfg.BudgetEnforce = cf.budgetEnforce
			logger.Printf("privacy budget %s: cap ε=%g at δ=%g (ledger %s)",
				cf.budgetEnforce, cf.budgetCap, cf.budgetDelta, budgetWhere(cf.budgetDir))
		}
		srv, err := server.New(scfg)
		if err != nil {
			return err
		}
		closers = append(closers, srv.Close)
		handler = srv

	case "node":
		owned, err := ownedShards(cf.clusterShards, cf.clusterNodes, cf.nodeIndex)
		if err != nil {
			return err
		}
		stores := make([]store.Store, len(owned))
		for i, g := range owned {
			st, err := openShardStore(storePath, icfg, storeCodec, g)
			if err != nil {
				return err
			}
			closers = append(closers, st.Close)
			stores[i] = st
		}
		local, err := shardset.NewLocal(stores, shardset.LocalOptions{
			GlobalIDs: owned, Journal: true, JournalRetain: cf.journalRetain,
			FollowerAckTTL: cf.followerAckTTL,
		})
		if err != nil {
			return err
		}
		if seedCatalog {
			if err := seedStore(local, logger); err != nil {
				return err
			}
		}
		ckpt, err := openCheckpoints(checkpointDir, storeCodec, checkpointEvery, logger)
		if err != nil {
			return err
		}
		if ckpt != nil {
			closers = append(closers, ckpt.Close)
		}
		scfg := server.Config{
			Router:             local,
			Schedule:           core.DefaultSchedule(),
			RequesterToken:     token,
			Logger:             logger,
			Checkpoints:        ckpt,
			CheckpointInterval: checkpointEvery,
			Role:               "node",
			ClusterShards:      cf.clusterShards,
		}
		cf.admission(&scfg)
		var bset *budget.Set
		if cf.budgetEnabled() {
			bset, err = budget.NewSet(budget.SetOptions{
				Shards: cf.clusterShards, GlobalIDs: owned, Dir: cf.budgetDir, Config: cf.budgetConfig(),
			})
			if err != nil {
				return err
			}
			closers = append(closers, bset.Close)
			// The node's own public API enforces through its hosted
			// subset; charges for workers on other nodes' shards are
			// skipped here and enforced at the frontend.
			scfg.Budget = bset
			scfg.BudgetEnforce = cf.budgetEnforce
			logger.Printf("privacy budget %s: hosting budget shards %v, cap ε=%g at δ=%g (ledger %s)",
				cf.budgetEnforce, owned, cf.budgetCap, cf.budgetDelta, budgetWhere(cf.budgetDir))
		}
		srv, err := server.New(scfg)
		if err != nil {
			return err
		}
		closers = append(closers, srv.Close)
		node, err := server.NewNode(srv, cf.clusterShards)
		if err != nil {
			return err
		}
		if bset != nil {
			node.HostBudget(bset)
		}
		rpc, err := shardrpc.NewHandler(node, cf.clusterToken)
		if err != nil {
			return err
		}
		if cf.manifest != "" {
			if cf.advertise == "" {
				return errors.New("node with -manifest needs -advertise (its URL as the manifest names it)")
			}
			w, err := placement.Watch(cf.manifest, cf.manifestPoll, func(m *placement.Manifest) {
				node.ApplyManifest(m, cf.advertise)
			})
			if err != nil {
				return fmt.Errorf("placement manifest %s: %w", cf.manifest, err)
			}
			closers = append(closers, func() error { w.Close(); return nil })
			logger.Printf("watching placement manifest %s every %v (advertised as %s)", cf.manifest, cf.manifestPoll, cf.advertise)
		}
		logger.Printf("node %d/%d owns global shards %v", cf.nodeIndex, cf.clusterNodes, owned)
		mux := http.NewServeMux()
		mux.Handle("/shardrpc/", rpc)
		mux.Handle("/", srv)
		handler = mux

	case "frontend":
		if cf.peers == "" && cf.manifest == "" {
			return errors.New("frontend needs -peers or -manifest")
		}
		var remote *shardrpc.Remote
		var peerURLs []string
		if cf.manifest != "" {
			// Manifest-driven routing: shard -> primary + replicas with
			// per-shard epochs, reloaded on file change (a promotion
			// re-routes without a restart), plus the health-probing
			// failure detector that fails reads over to replicas.
			m, err := placement.Load(cf.manifest)
			if err != nil {
				return fmt.Errorf("placement manifest %s: %w", cf.manifest, err)
			}
			remote, err = shardrpc.NewRemoteFromManifest(m, cf.clusterToken, nil)
			if err != nil {
				return err
			}
			peerURLs = m.Nodes()
			w, err := placement.Watch(cf.manifest, cf.manifestPoll, func(m *placement.Manifest) {
				if err := remote.ApplyManifest(m); err != nil {
					logger.Printf("placement manifest reload: %v", err)
				}
			})
			if err != nil {
				return fmt.Errorf("placement manifest %s: %w", cf.manifest, err)
			}
			closers = append(closers, func() error { w.Close(); return nil })
			// A fenced write means a newer manifest exists somewhere:
			// re-poll immediately instead of waiting out the interval.
			remote.OnFenced(w.Poll)
			remote.EnableFailover(shardrpc.FailoverOptions{ProbeInterval: cf.probeInterval})
			closers = append(closers, remote.Close)
			logger.Printf("watching placement manifest %s every %v (probe interval %v)", cf.manifest, cf.manifestPoll, cf.probeInterval)
		} else {
			var clients []*shardrpc.Client
			for _, p := range strings.Split(cf.peers, ",") {
				p = strings.TrimSpace(p)
				if p == "" {
					continue
				}
				peerURLs = append(peerURLs, p)
				clients = append(clients, shardrpc.NewClient(p, cf.clusterToken, nil))
			}
			if len(clients) == 0 {
				return errors.New("frontend needs at least one peer")
			}
			rr, err := shardrpc.NewRemoteRoundRobin(clients, cf.clusterShards)
			if err != nil {
				return err
			}
			remote = rr
		}
		if seedCatalog {
			if err := seedStore(remote, logger); err != nil {
				return err
			}
		}
		scfg := server.Config{
			Router:           remote,
			Schedule:         core.DefaultSchedule(),
			RequesterToken:   token,
			Logger:           logger,
			Role:             "frontend",
			FrontendCacheTTL: cf.cacheTTL,
			FrontendRefresh:  cf.cacheRefresh,
		}
		cf.admission(&scfg)
		if cf.budgetEnforce != "off" {
			chargeClients := make([]*shardrpc.Client, len(peerURLs))
			for i, p := range peerURLs {
				chargeClients[i] = shardrpc.NewClient(p, cf.clusterToken, nil)
			}
			charger, err := shardrpc.NewRemoteCharger(chargeClients, cf.clusterShards, cf.budgetConfig())
			if err != nil {
				return err
			}
			// Fuse charges into the submit RPC for workers whose budget
			// shard is colocated with the response shard; the charger
			// covers the rest (and refunds, peeks, stats).
			if err := remote.EnablePiggybackCharges(cf.clusterShards); err != nil {
				return err
			}
			scfg.Budget = charger
			scfg.BudgetEnforce = cf.budgetEnforce
			logger.Printf("privacy budget %s: charging %d budget shards across %d nodes, cap ε=%g at δ=%g",
				cf.budgetEnforce, cf.clusterShards, len(peerURLs), cf.budgetCap, cf.budgetDelta)
		}
		srv, err := server.New(scfg)
		if err != nil {
			return err
		}
		closers = append(closers, srv.Close)
		if cf.cacheTTL < 0 {
			logger.Printf("frontend routing %d shards across %d nodes (partial cache disabled)", cf.clusterShards, len(peerURLs))
		} else {
			logger.Printf("frontend routing %d shards across %d nodes (partial cache TTL %v, refresh %v)",
				cf.clusterShards, len(peerURLs), cf.cacheTTL, cf.cacheRefresh)
		}
		handler = srv

	case "replica":
		if cf.follow == "" {
			return errors.New("replica needs -follow")
		}
		if cf.manifest != "" && cf.advertise == "" {
			return errors.New("replica with -manifest needs -advertise (its URL as the manifest names it)")
		}
		rep, err := server.NewReplica(server.ReplicaConfig{
			Client:         shardrpc.NewClient(cf.follow, cf.clusterToken, nil),
			Schedule:       core.DefaultSchedule(),
			RequesterToken: token,
			Logger:         logger,
			PollInterval:   cf.pollInterval,
			FollowerID:     cf.followerID,
			JournalRetain:  cf.journalRetain,
			ManifestPath:   cf.manifest,
			SelfURL:        cf.advertise,
			PromoteAfter:   cf.promoteAfter,
		})
		if err != nil {
			return err
		}
		closers = append(closers, rep.Close)
		// The replica serves shardrpc too: frontends fail reads over to
		// it while its node is down, and after a promotion it is the
		// shard's write path and its followers' tail source.
		rpc, err := shardrpc.NewHandler(rep, cf.clusterToken)
		if err != nil {
			return err
		}
		if cf.manifest != "" {
			w, err := placement.Watch(cf.manifest, cf.manifestPoll, rep.ApplyManifest)
			if err != nil {
				return fmt.Errorf("placement manifest %s: %w", cf.manifest, err)
			}
			closers = append(closers, func() error { w.Close(); return nil })
			logger.Printf("watching placement manifest %s every %v (advertised as %s)", cf.manifest, cf.manifestPoll, cf.advertise)
		}
		if cf.promoteAfter > 0 {
			logger.Printf("replica tailing %s every %v (auto-promote after %v unreachable)", cf.follow, cf.pollInterval, cf.promoteAfter)
		} else {
			logger.Printf("replica tailing %s every %v", cf.follow, cf.pollInterval)
		}
		mux := http.NewServeMux()
		mux.Handle("/shardrpc/", rpc)
		mux.Handle("/", rep)
		handler = mux

	default:
		return fmt.Errorf("unknown role %q (standalone, node, frontend, replica)", cf.role)
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (%s)", addr, cf.role)
		errCh <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		logger.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}

// seedStore publishes the paper's survey catalog, skipping surveys that
// a replayed durable store already holds. It seeds through whatever
// publish surface the role has: a bare store, a local shard set, or a
// frontend's remote router.
func seedStore(dst publisher, logger *log.Logger) error {
	lecturers := []string{"Dr. Ada", "Dr. Babbage", "Dr. Curie", "Dr. Dijkstra"}
	catalog := append(survey.ProfilingSurveys(),
		survey.Health(), survey.Awareness(), survey.Lecturers(lecturers))
	for _, sv := range catalog {
		if err := dst.PutSurvey(sv); err != nil {
			if errors.Is(err, store.ErrExists) {
				continue // already present in a replayed store
			}
			return err
		}
		logger.Printf("published survey %q (%d questions)", sv.ID, len(sv.Questions))
	}
	return nil
}
