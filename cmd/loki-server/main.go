// Command loki-server runs the Loki backend: the HTTP/JSON API that
// serves surveys, accepts at-source-obfuscated responses, and exposes
// noise-aware aggregates to requesters.
//
// Usage:
//
//	loki-server -addr :8080 -token secret -store loki.jsonl -seed-catalog
//	loki-server -store ingest:/var/lib/loki -shards 8 -commit-interval 1ms
//
// With -store mem the server keeps everything in memory; with -store
// ingest:DIR it opens the sharded segmented-WAL ingest store rooted at
// DIR (tuned by -shards, -commit-interval and -segment-bytes); otherwise
// the given JSON-lines file is opened (and replayed) as the durable
// store. -seed-catalog publishes the paper's survey catalog on startup
// so a fresh server has something to serve.
//
// -checkpoint-dir DIR enables durable live-aggregate checkpoints: the
// server periodically (-checkpoint-interval) persists each survey's
// accumulator state plus store cursor, so after a restart the first read
// scans only the store tail beyond the checkpoint instead of the whole
// backlog.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"loki/internal/checkpoint"
	"loki/internal/core"
	"loki/internal/ingest"
	"loki/internal/server"
	"loki/internal/store"
	"loki/internal/survey"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "mem", `persistence: "mem", "ingest:DIR" or a JSON-lines file path`)
	token := flag.String("token", "requester-secret", "requester bearer token")
	seedCatalog := flag.Bool("seed-catalog", false, "publish the paper's survey catalog on startup")
	shards := flag.Int("shards", 8, "ingest store: number of hash-partitioned WAL shards")
	commitEvery := flag.Duration("commit-interval", 0, "ingest store: group-commit window (0 = commit as soon as the committer is free)")
	segmentBytes := flag.Int64("segment-bytes", 16<<20, "ingest store: WAL segment rotation threshold")
	idleCompact := flag.Duration("idle-compact", time.Minute, "ingest store: compact a shard's WAL tail after this long without commits (negative disables)")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for durable live-aggregate checkpoints (empty disables; restart catch-up then rescans whole backlogs)")
	checkpointEvery := flag.Duration("checkpoint-interval", 15*time.Second, "background checkpointer flush period")
	flag.Parse()

	icfg := ingest.Config{Shards: *shards, CommitInterval: *commitEvery, SegmentBytes: *segmentBytes, IdleCompact: *idleCompact}
	logger := log.New(os.Stderr, "loki-server ", log.LstdFlags)
	if err := run(*addr, *storePath, *token, *seedCatalog, icfg, *checkpointDir, *checkpointEvery, logger); err != nil {
		logger.Fatal(err)
	}
}

// openStore resolves the -store flag: "mem", "ingest:DIR", or a
// JSON-lines file path.
func openStore(storePath string, icfg ingest.Config) (store.Store, error) {
	switch {
	case storePath == "mem":
		return store.NewMem(), nil
	case strings.HasPrefix(storePath, "ingest:"):
		return ingest.Open(strings.TrimPrefix(storePath, "ingest:"), icfg)
	default:
		return store.OpenFile(storePath)
	}
}

func run(addr, storePath, token string, seedCatalog bool, icfg ingest.Config, checkpointDir string, checkpointEvery time.Duration, logger *log.Logger) error {
	st, err := openStore(storePath, icfg)
	if err != nil {
		return err
	}
	defer st.Close()

	if seedCatalog {
		if err := seedStore(st, logger); err != nil {
			return err
		}
	}

	var ckpt *checkpoint.Log
	if checkpointDir != "" {
		ckpt, err = checkpoint.Open(checkpointDir)
		if err != nil {
			return err
		}
		defer ckpt.Close()
		logger.Printf("checkpointing live aggregates to %s every %v (%d surveys on record)",
			checkpointDir, checkpointEvery, ckpt.Len())
		if n := ckpt.CorruptRecords(); n > 0 {
			logger.Printf("checkpoint log had %d unreadable records (skipped); affected surveys rebuild from the store", n)
		}
	}

	srv, err := server.New(server.Config{
		Store:              st,
		Schedule:           core.DefaultSchedule(),
		RequesterToken:     token,
		Logger:             logger,
		Checkpoints:        ckpt,
		CheckpointInterval: checkpointEvery,
	})
	if err != nil {
		return err
	}
	// On shutdown, stop the checkpointer after a final flush so the next
	// start resumes from everything folded (closed before ckpt/st by
	// LIFO defer order).
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		logger.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}

// seedStore publishes the paper's survey catalog, skipping surveys that a
// replayed durable store already holds.
func seedStore(st store.Store, logger *log.Logger) error {
	lecturers := []string{"Dr. Ada", "Dr. Babbage", "Dr. Curie", "Dr. Dijkstra"}
	catalog := append(survey.ProfilingSurveys(),
		survey.Health(), survey.Awareness(), survey.Lecturers(lecturers))
	for _, sv := range catalog {
		if err := st.PutSurvey(sv); err != nil {
			if errors.Is(err, store.ErrExists) {
				continue // already present in a replayed store
			}
			return err
		}
		logger.Printf("published survey %q (%d questions)", sv.ID, len(sv.Questions))
	}
	return nil
}
