// Command loki-attack runs the paper's §2 de-anonymization experiment
// end to end on the simulated crowdsourcing platform and prints the
// pipeline report: unique workers → linkable → re-identified → sensitive
// inference, with the awareness follow-up and the platform economics.
//
// Flags expose the ablation knobs: -pseudonyms switches the platform to
// per-survey worker IDs (the countermeasure), -no-filter disables the
// redundancy filter, -victims prints the per-victim detail the paper
// calls "a serious breach of privacy".
package main

import (
	"flag"
	"fmt"
	"log"

	"loki/internal/experiments"
	"loki/internal/platform"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	pseudonyms := flag.Bool("pseudonyms", false, "use per-survey pseudonymous worker IDs")
	noFilter := flag.Bool("no-filter", false, "disable the redundancy (random-responder) filter")
	victims := flag.Bool("victims", false, "print per-victim detail")
	flag.Parse()

	cfg := experiments.DefaultDeanonConfig()
	cfg.Seed = *seed
	if *pseudonyms {
		cfg.Platform.IDPolicy = platform.PseudonymousIDs
	}
	cfg.Attack.FilterInconsistent = !*noFilter

	res, err := experiments.RunDeanonymization(cfg)
	if err != nil {
		log.Fatal("loki-attack: ", err)
	}
	fmt.Println(res.Render())

	if *victims {
		fmt.Println("re-identified individuals with linked health answers:")
		for _, v := range res.Attack.Victims {
			fmt.Printf("  person %6d  %v  smoking=%-17s cough=%d d/wk  risk=%.2f\n",
				v.PersonID, v.QuasiID, v.Smoking, v.CoughDays, v.Risk)
		}
	}
}
