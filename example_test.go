package loki_test

import (
	"fmt"

	"loki"
)

// Example demonstrates the core at-source flow through the public API:
// answers are obfuscated on the device and the ledger tracks the
// cumulative loss.
func Example() {
	sv := loki.LecturerSurvey([]string{"Dr. A"})
	obf, _ := loki.NewObfuscator(loki.DefaultSchedule(), loki.DefaultOptions())
	ledger, _ := loki.NewLedger(1e-6)

	raw := []loki.Answer{loki.RatingAnswer("lecturer-00", 4)}
	noisy, _ := obf.ObfuscateResponse(sv, raw, loki.High, loki.NewRNG(7), ledger)

	fmt.Printf("uploads %.2f instead of %.0f\n", noisy[0].Rating, raw[0].Rating)
	fmt.Printf("responses recorded: %d\n", ledger.Responses())
	// Output:
	// uploads 5.93 instead of 4
	// responses recorded: 1
}

// ExampleAuditPortfolio shows the platform-level linkage audit flagging
// the paper's three profiling surveys.
func ExampleAuditPortfolio() {
	portfolio := []*loki.Survey{
		loki.AstrologySurvey(), loki.MatchmakingSurvey(), loki.CoverageSurvey(),
	}
	audit := loki.AuditPortfolio(portfolio)
	fmt.Println("completes quasi-identifier:", audit.CompletesQuasiID)
	fmt.Println("max severity:", audit.MaxSeverity())
	// Output:
	// completes quasi-identifier: true
	// max severity: critical
}
