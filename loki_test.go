package loki_test

import (
	"math"
	"testing"

	"loki"
)

// TestFacadeObfuscation drives the paper's core mechanism purely through
// the public API.
func TestFacadeObfuscation(t *testing.T) {
	sv := &loki.Survey{
		ID:    "t",
		Title: "t",
		Questions: []loki.Question{
			{ID: "q1", Text: "q1", Kind: loki.Rating, ScaleMin: 1, ScaleMax: 5},
			{ID: "q2", Text: "q2", Kind: loki.MultipleChoice, Options: []string{"a", "b", "c"}},
		},
	}
	if err := sv.Validate(); err != nil {
		t.Fatal(err)
	}
	obf, err := loki.NewObfuscator(loki.DefaultSchedule(), loki.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := loki.NewLedger(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	raw := []loki.Answer{loki.RatingAnswer("q1", 4), loki.ChoiceAnswer("q2", 1)}
	noisy, err := obf.ObfuscateResponse(sv, raw, loki.Medium, loki.NewRNG(1), ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(noisy) != 2 {
		t.Fatalf("answers = %d", len(noisy))
	}
	if ledger.Spent().Epsilon <= 0 {
		t.Error("ledger empty after obfuscation")
	}
	if lvl, err := loki.ParseLevel("medium"); err != nil || lvl != loki.Medium {
		t.Error("ParseLevel through facade broken")
	}
}

// TestFacadeCatalog checks the paper's surveys are reachable.
func TestFacadeCatalog(t *testing.T) {
	for _, sv := range []*loki.Survey{
		loki.AstrologySurvey(), loki.MatchmakingSurvey(), loki.CoverageSurvey(),
		loki.HealthSurvey(), loki.AwarenessSurvey(), loki.LecturerSurvey([]string{"X"}),
	} {
		if err := sv.Validate(); err != nil {
			t.Errorf("catalog survey %q: %v", sv.ID, err)
		}
	}
}

// TestFacadeSubstrates exercises population → registry → platform →
// attack through the public names.
func TestFacadeSubstrates(t *testing.T) {
	popCfg := loki.DefaultPopulationConfig()
	popCfg.RegistrySize = 5000
	pop, err := loki.GeneratePopulation(popCfg, loki.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	reg := loki.NewRegistry(pop)
	if reg.Size() != 5000 {
		t.Fatalf("registry size %d", reg.Size())
	}
	plCfg := loki.DefaultPlatformConfig()
	plCfg.WorkerPoolSize = 200
	pl, err := loki.NewPlatform(pop, plCfg, loki.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.PostSurvey(loki.AstrologySurvey(), 50); err != nil {
		t.Fatal(err)
	}
	if err := pl.RunDays(5); err != nil {
		t.Fatal(err)
	}
	if pl.TotalResponses() == 0 {
		t.Fatal("platform collected nothing")
	}
	if _, err := loki.NewAttack(reg, loki.DefaultAttackConfig()); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeTrial runs Fig. 2 through the facade and sanity-checks the
// paper's qualitative claims.
func TestFacadeTrial(t *testing.T) {
	res, err := loki.RunLecturerTrial(loki.DefaultTrialConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAbsDeviation[loki.High] <= res.MeanAbsDeviation[loki.None] {
		t.Error("Fig. 2 shape lost through the facade")
	}
	if math.IsNaN(res.NaiveRMSE) {
		t.Error("RMSE NaN")
	}
}

// TestFacadeStores opens every store backend purely through the public
// API and pushes one response end to end: the ingest store drops in
// wherever a Store is expected.
func TestFacadeStores(t *testing.T) {
	sv := &loki.Survey{
		ID:    "facade-store",
		Title: "t",
		Questions: []loki.Question{
			{ID: "q1", Text: "q1", Kind: loki.Rating, ScaleMin: 1, ScaleMax: 5},
		},
	}
	resp := &loki.Response{
		SurveyID:     sv.ID,
		WorkerID:     "w1",
		Answers:      []loki.Answer{loki.RatingAnswer("q1", 4)},
		PrivacyLevel: "medium",
		Obfuscated:   true,
	}
	fileStore, err := loki.OpenFileStoreWith(t.TempDir()+"/loki.jsonl",
		loki.FileStoreOptions{Sync: loki.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ingestStore, err := loki.OpenIngestStore(t.TempDir(), loki.IngestConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []loki.Store{loki.NewMemStore(), fileStore, ingestStore} {
		if err := st.PutSurvey(sv); err != nil {
			t.Fatal(err)
		}
		if err := st.AppendResponse(resp); err != nil {
			t.Fatal(err)
		}
		if n := st.ResponseCount(sv.ID); n != 1 {
			t.Fatalf("%T: ResponseCount = %d", st, n)
		}
		srv, err := loki.NewServer(loki.ServerConfig{
			Store:          st,
			Schedule:       loki.DefaultSchedule(),
			RequesterToken: "tok",
		})
		if err != nil || srv == nil {
			t.Fatalf("%T: server refused store: %v", st, err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	stats := ingestStore.Stats()
	if stats.Appends != 1 || stats.Commits != 1 {
		t.Fatalf("ingest stats = %+v", stats)
	}
}
